"""Best-effort intra-module name and type resolution for lint rules.

The flow rules need to know *what a name is* before they can judge a
call on it: ``cond.wait()`` is only an L008 question if ``cond`` is a
``threading.Condition``, and ``shm.close()`` only releases something if
``shm`` came from ``SharedMemory(...)``.  Full type inference is out of
scope for a lint pass; what the rules actually need is much smaller and
fully decidable from one module's AST:

* an **import-alias map** — ``import threading as t`` and
  ``from multiprocessing.connection import Client as C`` both resolve
  references back to canonical dotted names;
* **constructor typing** — ``x = SharedMemory(...)`` (or any aliased or
  dotted spelling of a known constructor) records ``x``'s type for the
  scope it is assigned in, including tuple unpacking for the
  ``fd, path = mkstemp()`` idiom;
* **self-attribute typing** — the same, for ``self._lock = Lock()``
  style assignments anywhere in a class body, so methods can resolve
  ``self._lock`` even though ``__init__`` did the assigning.

Resolution is deliberately *best effort*: a name that is reassigned
from an unknown expression, shadowed, or passed in as a parameter
simply resolves to nothing, and the rules skip it.  Under-resolution
makes rules quieter, never wrong — every type this module does report
is syntactically certain within the module.
"""

from __future__ import annotations

import ast

#: Canonical constructor names → the short type tag rules match on.
#: Keys are full dotted paths *and* bare trailing names; the resolver
#: matches the longest known suffix of however the call site spells it.
KNOWN_CONSTRUCTORS: "dict[str, str]" = {
    "multiprocessing.shared_memory.SharedMemory": "SharedMemory",
    "shared_memory.SharedMemory": "SharedMemory",
    "SharedMemory": "SharedMemory",
    "multiprocessing.connection.Listener": "Listener",
    "connection.Listener": "Listener",
    "Listener": "Listener",
    "multiprocessing.connection.Client": "Client",
    "connection.Client": "Client",
    "Client": "Client",
    "multiprocessing.Pool": "Pool",
    "Pool": "Pool",
    "threading.Condition": "Condition",
    "Condition": "Condition",
    "threading.Lock": "Lock",
    "threading.RLock": "Lock",
    "Lock": "Lock",
    "RLock": "Lock",
    "multiprocessing.Lock": "Lock",
    "multiprocessing.RLock": "Lock",
    "threading.Semaphore": "Lock",
    "threading.BoundedSemaphore": "Lock",
    "tempfile.mkstemp": "mkstemp",
    "mkstemp": "mkstemp",
}

#: Constructors reached as methods on a context object rather than by
#: name: ``ctx.Pool(...)`` for any ``ctx = get_context(...)``.
METHOD_CONSTRUCTORS: "dict[str, str]" = {
    "Pool": "Pool",
    "Lock": "Lock",
    "RLock": "Lock",
    "Condition": "Condition",
}


def dotted_name(node: ast.AST) -> "str | None":
    """``a.b.c`` as a string for Name/Attribute chains, else ``None``."""
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ModuleResolver:
    """Name/type facts for one module tree.

    Construction walks the tree once; queries are dict lookups.
    """

    def __init__(self, tree: ast.AST) -> None:
        #: local alias → canonical dotted prefix ("t" → "threading",
        #: "C" → "multiprocessing.connection.Client").
        self.aliases: "dict[str, str]" = {}
        #: id(function node) → {local name → type tag}.
        self._locals: "dict[int, dict[str, str]]" = {}
        #: class name → {attribute name → type tag} for self.X = ctor().
        self._attrs: "dict[str, dict[str, str]]" = {}
        self._collect_imports(tree)
        self._collect_assignments(tree)

    # -- construction ------------------------------------------------------

    def _collect_imports(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.aliases[local] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def _collect_assignments(self, tree: ast.AST) -> None:
        class_stack: "list[str]" = []
        fn_stack: "list[ast.AST]" = []

        def visit(node: ast.AST) -> None:
            if isinstance(node, ast.ClassDef):
                class_stack.append(node.name)
                for child in ast.iter_child_nodes(node):
                    visit(child)
                class_stack.pop()
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn_stack.append(node)
                self._locals.setdefault(id(node), {})
                for child in ast.iter_child_nodes(node):
                    visit(child)
                fn_stack.pop()
                return
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                tag = self.constructor_of(node.value)
                if tag is not None:
                    self._record_targets(
                        node.targets, tag, class_stack, fn_stack
                    )
            elif (
                isinstance(node, ast.AnnAssign)
                and node.value is not None
                and isinstance(node.value, ast.Call)
            ):
                tag = self.constructor_of(node.value)
                if tag is not None:
                    self._record_targets(
                        [node.target], tag, class_stack, fn_stack
                    )
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(tree)

    def _record_targets(self, targets, tag, class_stack, fn_stack) -> None:
        scope = (
            self._locals[id(fn_stack[-1])] if fn_stack else None
        )
        for target in targets:
            if isinstance(target, ast.Name) and scope is not None:
                if tag == "mkstemp":
                    # Bare ``x = mkstemp()`` keeps the tuple; only the
                    # unpacked fd element is a trackable handle.
                    continue
                scope[target.id] = tag
            elif isinstance(target, ast.Tuple) and tag == "mkstemp":
                # fd, path = mkstemp(): the first element is the fd.
                if (
                    scope is not None
                    and target.elts
                    and isinstance(target.elts[0], ast.Name)
                ):
                    scope[target.elts[0].id] = "fd"
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and class_stack
                and tag != "mkstemp"
            ):
                self._attrs.setdefault(class_stack[-1], {})[target.attr] = tag

    # -- queries -----------------------------------------------------------

    def canonical(self, node: ast.AST) -> "str | None":
        """The alias-expanded dotted name of a Name/Attribute chain."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        expanded = self.aliases.get(head, head)
        return f"{expanded}.{rest}" if rest else expanded

    def constructor_of(self, call: ast.Call) -> "str | None":
        """The type tag a call produces, if its callee is a known
        constructor under any local spelling."""
        canonical = self.canonical(call.func)
        if canonical is not None:
            # Longest-known-suffix match: "mp.connection.Client" hits
            # "connection.Client" even if "mp" isn't an import alias.
            parts = canonical.split(".")
            for start in range(len(parts)):
                tag = KNOWN_CONSTRUCTORS.get(".".join(parts[start:]))
                if tag is not None:
                    return tag
        # ctx.Pool(...) style: a method constructor on any object.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in METHOD_CONSTRUCTORS
            and dotted_name(call.func) is None
        ):
            return METHOD_CONSTRUCTORS[call.func.attr]
        return None

    def type_of(
        self,
        expr: ast.AST,
        fn: "ast.AST | None" = None,
        class_name: "str | None" = None,
    ) -> "str | None":
        """The type tag of a reference: a local name assigned from a
        known constructor in ``fn``, or a ``self.attr`` typed anywhere
        in ``class_name``'s body."""
        if isinstance(expr, ast.Name) and fn is not None:
            return self._locals.get(id(fn), {}).get(expr.id)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and class_name is not None
        ):
            return self._attrs.get(class_name, {}).get(expr.attr)
        return None

    def class_attr_types(self, class_name: str) -> "dict[str, str]":
        return dict(self._attrs.get(class_name, {}))

    def function_locals(self, fn: ast.AST) -> "dict[str, str]":
        return dict(self._locals.get(id(fn), {}))
