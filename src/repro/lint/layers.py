"""The layer DAG of ``src/repro`` — the single authoritative statement.

This table is what rule **L001** enforces and what the README's
architecture section points at.  A package may import (at module
level) only packages in *strictly lower* layers; packages sharing a
layer are independent and may not import each other.  The ordering
encodes the stack the PRs grew bottom-up:

====  =======================================  =================================
rank  packages                                 role
====  =======================================  =================================
0     ``errors``, ``constants``                foundation (no repro imports)
1     ``solver``, ``waveforms``                numeric/drive primitives
2     ``ja``                                   Jiles–Atherton material equations
3     ``core``                                 timeless kernel + integrators
4     ``backend``, ``baselines``, ``hdl``,     kernels' service providers:
      ``models``, ``preisach``                 array backends, references,
                                               protocol/registry, Preisach
5     ``batch``                                lockstep ensemble engines
6     ``analysis``, ``io``, ``scenarios``      analysis + drive catalogue
7     ``magnetics``                            component models (use analysis)
8     ``parallel``                             sharded multi-process executor
9     ``sched``                                calibrated autoscheduler
10    ``service``, ``dist``                    warm-pool service + result
                                               cache; multi-host dispatch
11    ``experiments``, ``lint``, ``repro``     surfaces (CLI, checker, API)
====  =======================================  =================================

The two rules reviewers kept restating by hand fall straight out of
the ranks: **``parallel`` never imports ``service``** (8 < 10, and no
allowlist entry exists) and **``sched`` sits above ``parallel``**
(9 > 8 — the executor's ``plan=`` hook reaches *up* lazily, which is
exactly why ``("parallel", "sched")`` is on the lazy allowlist).

:data:`LAZY_ALLOWLIST` names the documented function-scoped imports
that deliberately reach upward to break an import cycle; anything
upward and *eager* is always a violation, and an undocumented upward
lazy import is too.

Inside ``lint`` itself the same discipline holds one level down,
by convention rather than by rank (L001 ranks packages, not
modules): ``base`` and ``layers`` are the foundation, ``cfg`` and
``resolve`` sit above them with no knowledge of any rule, and
``rules/*`` compose all four.  A rule importing another rule is the
one exception, and only for shared *scope tables* (L009 reuses
L002's ``PARITY_MODULES`` so "kernel-parity module" can never mean
two different sets).
"""

from __future__ import annotations

#: The layer DAG, lowest layer first.  Packages in one tuple share a
#: rank and are mutually independent.
LAYER_ORDER: "tuple[tuple[str, ...], ...]" = (
    ("errors", "constants"),
    ("solver", "waveforms"),
    ("ja",),
    ("core",),
    ("backend", "baselines", "hdl", "models", "preisach"),
    ("batch",),
    ("analysis", "io", "scenarios"),
    ("magnetics",),
    ("parallel",),
    ("sched",),
    ("service", "dist"),
    ("experiments", "lint", "repro"),
)

#: ``{package: rank}`` lookup derived from :data:`LAYER_ORDER`.
RANK: "dict[str, int]" = {
    package: rank
    for rank, layer in enumerate(LAYER_ORDER)
    for package in layer
}

#: Documented lazy-import cycle breaks: ``(importer, imported)`` pairs
#: allowed to reach upward (or sideways) **from function scope only**.
#: Each entry exists for a recorded reason — keep this list short and
#: justified, it is the escape hatch L001 audits.
LAZY_ALLOWLIST: "frozenset[tuple[str, str]]" = frozenset(
    {
        # numba fused drivers rebuild lane matrices via
        # repro.batch.lanes; a top-level import would cycle through
        # repro.batch -> engine -> repro.backend (PR 5 gotcha).
        ("backend", "batch"),
        # TimelessJAModel.batch() convenience constructor builds the
        # ensemble engine that wraps it.
        ("core", "batch"),
        # The family registry's factory recipes build engines,
        # baselines and backends at call time; eagerly they would
        # invert models <- batch.
        ("models", "backend"),
        ("models", "baselines"),
        ("models", "batch"),
        ("models", "preisach"),
        # The executor's plan="auto" hook prices plans through the
        # autoscheduler one layer up; plan=None callers never pay for
        # (or depend on) repro.sched (PR 6 gotcha).
        ("parallel", "sched"),
        # The executor/grid hosts= hooks dispatch through repro.dist
        # two layers up; host-less callers never pay for (or depend
        # on) it — the same shape as the plan="auto" escape above.
        ("parallel", "dist"),
        # The dispatcher's wire-level dedup borrows the service
        # layer's canonical digests at call time; service and dist
        # share a rank and stay import-independent at module level.
        ("dist", "service"),
        # Everett/FORC identification batches per-lane waveforms
        # through the ensemble engine (PR 2).
        ("preisach", "batch"),
    }
)


def rank_of(package: "str | None") -> "int | None":
    """The layer rank of a package token (``None``: not layered —
    unknown packages are outside the DAG and L001 skips them)."""
    if package is None:
        return None
    return RANK.get(package)
