"""Drive the rules over a source tree and collect violations.

One parse per file, every rule over the same records, pragma
suppression applied at the end — see :mod:`repro.lint.base` for the
shared machinery and ``repro/lint/rules/`` for the rules themselves.
"""

from __future__ import annotations

from pathlib import Path

import repro.lint.rules  # noqa: F401  (imports register the built-in rules)
from repro.errors import ParameterError
from repro.lint.base import Module, Project, Violation, list_rules

#: What ``python -m repro.lint`` checks with no path arguments: the
#: installed ``repro`` package tree itself.
DEFAULT_ROOT = Path(__file__).resolve().parents[1]

#: Directory name holding deliberately-bad rule fixtures.  Scanning a
#: tree (``tests/``) skips anything *below* such a directory — the
#: seeded violations would otherwise fail every clean-tree gate — but
#: pointing the linter **at** a fixture directory still works, which is
#: exactly how the fixture tests and the CI trip-check invoke it.
FIXTURE_DIR_NAME = "lint_fixtures"


def iter_python_files(paths: "list[Path]") -> "list[Path]":
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: "dict[Path, None]" = {}
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for found in sorted(path.rglob("*.py")):
                if FIXTURE_DIR_NAME in found.relative_to(path).parts[:-1]:
                    continue
                seen.setdefault(found.resolve(), None)
        elif path.suffix == ".py" and path.exists():
            seen.setdefault(path.resolve(), None)
        else:
            raise ParameterError(f"not a Python file or directory: {path}")
    return sorted(seen)


def select_rules(
    select: "list[str] | None" = None,
    ignore: "list[str] | None" = None,
):
    """The rule instances one run applies (``--select`` wins first,
    then ``--ignore`` subtracts); unknown ids are an error."""
    available = {cls.id: cls for cls in list_rules()}
    chosen = list(available)
    if select:
        for rule_id in select:
            if rule_id not in available:
                raise ParameterError(
                    f"unknown lint rule {rule_id!r}; "
                    f"available: {', '.join(sorted(available))}"
                )
        chosen = [rid for rid in chosen if rid in set(select)]
    if ignore:
        for rule_id in ignore:
            if rule_id not in available:
                raise ParameterError(
                    f"unknown lint rule {rule_id!r}; "
                    f"available: {', '.join(sorted(available))}"
                )
        chosen = [rid for rid in chosen if rid not in set(ignore)]
    return [available[rid]() for rid in chosen]


def lint_paths(
    paths: "list[Path] | None" = None,
    select: "list[str] | None" = None,
    ignore: "list[str] | None" = None,
) -> "tuple[list[Violation], int]":
    """Lint files/trees; returns ``(violations, files_checked)``.

    Violations suppressed by an inline ``# repro-lint: disable=RULE``
    pragma on their line are dropped.  Files that fail to parse yield
    an ``E000`` violation (never suppressible) instead of aborting the
    run.
    """
    files = iter_python_files(
        [Path(p) for p in paths] if paths else [DEFAULT_ROOT]
    )
    modules: "list[Module]" = []
    violations: "list[Violation]" = []
    for path in files:
        try:
            modules.append(Module(path, path.read_text()))
        except SyntaxError as exc:
            violations.append(
                Violation(
                    "E000",
                    str(path),
                    exc.lineno or 1,
                    (exc.offset or 1) - 1,
                    f"syntax error: {exc.msg}",
                )
            )
    project = Project(modules)
    by_path = {str(m.path): m for m in modules}

    raw: "list[Violation]" = []
    for rule in select_rules(select, ignore):
        for module in modules:
            raw.extend(rule.check_module(module))
        raw.extend(rule.check_project(project))

    seen: set = set()
    for violation in raw:
        key = (violation.rule, violation.path, violation.line, violation.col,
               violation.message)
        if key in seen:
            continue
        seen.add(key)
        module = by_path.get(violation.path)
        if module is not None and module.suppressed(violation.rule, violation.line):
            continue
        violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations, len(files)
