"""Per-function control-flow graphs for the flow-aware lint rules.

The PR 8 rules were single-pass pattern matchers: they could say *this
call exists* but never *this call happens on every path*.  The
resource-lifecycle rule (L006) needs exactly that second question —
"does this ``SharedMemory`` reach ``close()`` on the exception branch
too?" — so this module builds a small, deliberately conservative CFG
per function:

* every simple statement is one node; compound statements contribute a
  header node (the ``if``/``while``/``for`` test, the ``with`` items,
  the ``try`` keyword) plus their bodies;
* ``if``/``while``/``for`` fork and join; loops carry a back edge and
  a fall-through edge (every loop is modelled as maybe-zero-iteration
  and maybe-terminating — sound for leak detection, where *more* paths
  can only add violations the author must then prove impossible with a
  ``finally``);
* ``break``/``continue``/``return``/``raise`` divert to the loop exit,
  the loop header, or the function :attr:`CFG.exit` — always routed
  through every enclosing ``finally`` body first, which is what makes
  "release it in a ``finally``" satisfy an all-paths query;
* every statement inside a ``try`` body gets an **exception edge** to
  each of its handlers (any statement may raise); exception edges are
  tagged so callers can ignore the edge leaving an acquisition
  statement itself (if the constructor raised, there is nothing to
  leak);
* ``with`` bodies are ordinary sequential flow — the ``__exit__``
  guarantee is a *rule-level* exemption (a resource named as a context
  manager is owned by the ``with``), not a CFG edge.

The graph is an over-approximation: it may contain paths no execution
takes (a ``finally`` that re-routes to both its normal and its abrupt
continuation, a ``while True`` modelled as terminating).  That is the
right direction for the rules built on it — a spurious path can only
produce a conservative finding, never hide a real one — and the README
documents the idiom for the rare deliberate case: release on the
spurious path too, or waive with a justified pragma.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Node-kind tags (plain strings so dumps stay readable in tests).
ENTRY = "entry"
EXIT = "exit"
STMT = "stmt"

#: Safety valve for :meth:`CFG.paths` — path enumeration is exponential
#: in branch count, and the unit tests only ever need small graphs.
MAX_PATHS = 4096


@dataclass
class Node:
    """One CFG node: a statement (or synthetic entry/exit marker)."""

    index: int
    kind: str
    stmt: "ast.stmt | None" = None
    #: Normal-flow successor node indices, in creation order.
    succ: "list[int]" = field(default_factory=list)
    #: Exception-flow successors (statement may raise into a handler).
    succ_except: "list[int]" = field(default_factory=list)

    @property
    def line(self) -> int:
        return self.stmt.lineno if self.stmt is not None else 0

    def all_succ(self) -> "list[int]":
        return self.succ + self.succ_except


class CFG:
    """The control-flow graph of one function body."""

    def __init__(self, fn) -> None:
        self.fn = fn
        self.nodes: "list[Node]" = []
        self._by_stmt: "dict[int, int]" = {}
        builder = _Builder(self)
        self.entry = builder.entry
        self.exit = builder.exit
        builder.build(fn.body)

    # -- construction helpers (used by _Builder) ---------------------------

    def _add(self, kind: str, stmt: "ast.stmt | None" = None) -> int:
        node = Node(len(self.nodes), kind, stmt)
        self.nodes.append(node)
        if stmt is not None:
            self._by_stmt[id(stmt)] = node.index
        return node.index

    def _edge(self, a: int, b: int, exceptional: bool = False) -> None:
        bucket = self.nodes[a].succ_except if exceptional else self.nodes[a].succ
        if b not in bucket:
            bucket.append(b)

    # -- queries -----------------------------------------------------------

    def node_of(self, stmt: ast.stmt) -> "int | None":
        """The node index of one statement object (``None`` when the
        statement is not part of this graph)."""
        return self._by_stmt.get(id(stmt))

    def reaches_exit_avoiding(
        self,
        start: int,
        avoid: "set[int]",
        *,
        skip_initial_exception_edges: bool = False,
    ) -> bool:
        """Is there any path ``start → exit`` touching no node in
        ``avoid``?

        The all-paths question the flow rules ask, inverted: "released
        on every path" is exactly "no avoid-free path to exit".
        ``skip_initial_exception_edges`` drops the exception edges
        leaving ``start`` itself — an acquisition statement that raises
        never produced the resource, so its own handler path cannot
        leak it.
        """
        seen = set()
        first = self.nodes[start]
        frontier = list(
            first.succ if skip_initial_exception_edges else first.all_succ()
        )
        while frontier:
            index = frontier.pop()
            if index in seen or index in avoid:
                continue
            if index == self.exit:
                return True
            seen.add(index)
            frontier.extend(self.nodes[index].all_succ())
        return False

    def paths(self, max_paths: int = MAX_PATHS) -> "list[list[int]]":
        """Every simple (cycle-free) entry→exit path, as node-index
        lists.  Loop back edges are cut by the simple-path restriction,
        so one loop contributes its zero-iteration and one-iteration
        shapes.  Raises :class:`RecursionError`-free: iterative DFS,
        bounded by ``max_paths``."""
        found: "list[list[int]]" = []
        stack: "list[tuple[int, list[int]]]" = [(self.entry, [self.entry])]
        while stack and len(found) < max_paths:
            index, trail = stack.pop()
            if index == self.exit:
                found.append(trail)
                continue
            for succ in reversed(self.nodes[index].all_succ()):
                if succ not in trail:
                    stack.append((succ, trail + [succ]))
        return found

    def path_lines(self, max_paths: int = MAX_PATHS) -> "list[list[int]]":
        """:meth:`paths` rendered as source-line sequences (synthetic
        entry/exit nodes dropped) — what the unit tests assert against."""
        return [
            [self.nodes[i].line for i in path if self.nodes[i].kind == STMT]
            for path in self.paths(max_paths)
        ]


class _Frame:
    """One enclosing-construct record the builder threads through
    nested statement lists: where ``break``/``continue`` go, which
    handlers an exception can reach, and which ``finally`` bodies an
    abrupt exit must traverse first."""

    __slots__ = ("loop_header", "loop_breaks", "handlers", "finallys")

    def __init__(self, loop_header, loop_breaks, handlers, finallys):
        self.loop_header = loop_header
        self.loop_breaks = loop_breaks
        self.handlers = handlers
        self.finallys = finallys


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.entry = cfg._add(ENTRY)
        self.exit = cfg._add(EXIT)

    def build(self, body: "list[ast.stmt]") -> None:
        frame = _Frame(None, None, (), ())
        out = self._block(body, {self.entry}, frame)
        for index in out:
            self.cfg._edge(index, self.exit)

    # -- abrupt-exit routing ------------------------------------------------

    def _route_through_finallys(
        self, source: int, target: int, finallys
    ) -> None:
        """Edge ``source → target`` via the chain of finally bodies
        (innermost first).  ``finallys`` entries are ``(entry, outs)``."""
        hop_sources = [source]
        for fin_entry, fin_outs in finallys:
            for hop in hop_sources:
                self.cfg._edge(hop, fin_entry)
            hop_sources = list(fin_outs) or [fin_entry]
        for hop in hop_sources:
            self.cfg._edge(hop, target)

    # -- statement lists ----------------------------------------------------

    def _block(self, body, preds: "set[int]", frame: _Frame) -> "set[int]":
        """Build one statement list; returns the dangling out-set whose
        edges the caller connects to whatever follows."""
        current = set(preds)
        for stmt in body:
            if not current:
                # Unreachable code after an abrupt exit still gets
                # nodes (rules may anchor on it) but no in-edges.
                current = set()
            current = self._statement(stmt, current, frame)
        return current

    def _statement(self, stmt, preds, frame: _Frame) -> "set[int]":
        cfg = self.cfg
        add, edge = cfg._add, cfg._edge

        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = add(STMT, stmt)
            for p in preds:
                edge(p, node)
            self._exception_edges(node, frame)
            # A raise under a try also lands in its handlers (wired by
            # _exception_edges just above); the exit route below models
            # the uncaught/unmatched case, always via the finallys.
            self._route_through_finallys(node, self.exit, frame.finallys)
            return set()

        if isinstance(stmt, ast.Break):
            node = add(STMT, stmt)
            for p in preds:
                edge(p, node)
            if frame.loop_breaks is not None:
                loop_finallys = self._finallys_inside_loop(frame)
                hop_sources = [node]
                for fin_entry, fin_outs in loop_finallys:
                    for hop in hop_sources:
                        edge(hop, fin_entry)
                    hop_sources = list(fin_outs) or [fin_entry]
                frame.loop_breaks.extend(hop_sources)
            return set()

        if isinstance(stmt, ast.Continue):
            node = add(STMT, stmt)
            for p in preds:
                edge(p, node)
            if frame.loop_header is not None:
                self._route_through_finallys(
                    node, frame.loop_header, self._finallys_inside_loop(frame)
                )
            return set()

        if isinstance(stmt, ast.If):
            node = add(STMT, stmt)
            for p in preds:
                edge(p, node)
            self._exception_edges(node, frame)
            then_out = self._block(stmt.body, {node}, frame)
            if stmt.orelse:
                else_out = self._block(stmt.orelse, {node}, frame)
            else:
                else_out = {node}
            return then_out | else_out

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            node = add(STMT, stmt)
            for p in preds:
                edge(p, node)
            self._exception_edges(node, frame)
            breaks: "list[int]" = []
            loop_frame = _Frame(node, breaks, frame.handlers, frame.finallys)
            body_out = self._block(stmt.body, {node}, loop_frame)
            for out in body_out:
                edge(out, node)  # back edge
            after: "set[int]" = {node} | set(breaks)
            if stmt.orelse:
                after = self._block(stmt.orelse, after, frame)
            return after

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = add(STMT, stmt)
            for p in preds:
                edge(p, node)
            self._exception_edges(node, frame)
            return self._block(stmt.body, {node}, frame)

        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            return self._try(stmt, preds, frame)

        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested definitions are control-flow no-ops here; their own
            # bodies get their own CFGs when a rule asks for them.
            node = add(STMT, stmt)
            for p in preds:
                edge(p, node)
            return {node}

        node = add(STMT, stmt)
        for p in preds:
            edge(p, node)
        self._exception_edges(node, frame)
        return {node}

    def _try(self, stmt: ast.Try, preds, frame: _Frame) -> "set[int]":
        cfg = self.cfg
        node = cfg._add(STMT, stmt)
        for p in preds:
            cfg._edge(p, node)
        self._exception_edges(node, frame)

        # Build the finally body first (entered with no preds; callers
        # wire into its entry), so abrupt exits inside the try can route
        # through it.
        fin: "tuple | None" = None
        if stmt.finalbody:
            fin_entry_mark = len(cfg.nodes)
            fin_outs = self._block(stmt.finalbody, set(), frame)
            fin = (fin_entry_mark, tuple(fin_outs))

        handler_nodes: "list[int]" = []
        handler_frame_finallys = ((fin,) if fin else ()) + frame.finallys
        inner_frame = _Frame(
            frame.loop_header,
            frame.loop_breaks,
            (),  # placeholder; set below once handler nodes exist
            handler_frame_finallys,
        )

        # Handlers need nodes before the body is built (the body's
        # exception edges point at them) — create the handler header
        # nodes now, bodies after.
        for handler in stmt.handlers:
            handler_nodes.append(cfg._add(STMT, handler))
        inner_frame.handlers = tuple(handler_nodes) + tuple(frame.handlers)

        body_mark_start = len(cfg.nodes)
        body_out = self._block(stmt.body, {node}, inner_frame)
        body_mark_stop = len(cfg.nodes)
        # Any statement in the try body may raise into each handler.
        for index in range(body_mark_start, body_mark_stop):
            if cfg.nodes[index].kind == STMT:
                for h in handler_nodes:
                    cfg._edge(index, h, exceptional=True)

        else_out = (
            self._block(stmt.orelse, body_out, inner_frame)
            if stmt.orelse
            else body_out
        )

        handler_outs: "set[int]" = set()
        handler_body_frame = _Frame(
            frame.loop_header,
            frame.loop_breaks,
            frame.handlers,
            handler_frame_finallys,
        )
        for handler, h_node in zip(stmt.handlers, handler_nodes):
            handler_outs |= self._block(
                handler.body, {h_node}, handler_body_frame
            )

        normal_out = else_out | handler_outs
        if fin is not None:
            fin_entry, fin_outs = fin
            for out in normal_out:
                cfg._edge(out, fin_entry)
            return set(fin_outs) or {fin_entry}
        return normal_out

    def _exception_edges(self, node: int, frame: _Frame) -> None:
        for handler in frame.handlers:
            self.cfg._edge(node, handler, exceptional=True)

    def _finallys_inside_loop(self, frame: _Frame) -> tuple:
        """The finally chain a break/continue must traverse: every
        finally opened *inside* the current loop.  The builder pushes
        loop and finally frames together, so the conservative answer —
        all currently-open finallys — is correct for the common shapes
        and over-approximates the rest (extra paths only)."""
        return frame.finallys


def build_cfg(fn) -> CFG:
    """The CFG of one ``ast.FunctionDef``/``AsyncFunctionDef``."""
    return CFG(fn)


def function_cfgs(tree: ast.AST):
    """Yield ``(function_node, CFG)`` for every function in a module
    tree (nested functions included — each gets its own graph)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, CFG(node)
