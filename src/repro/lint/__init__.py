"""``repro.lint`` — the repo's own AST-based invariant checker.

Seven PRs of scaling accumulated load-bearing conventions that were
only enforced by reviewer memory.  This package machine-enforces them
as a custom static-analysis pass over the source tree:

``L001`` layer-order
    The import graph of ``src/repro/`` must respect the layer DAG
    documented in :mod:`repro.lint.layers` (``parallel`` never imports
    ``service``; ``sched`` sits above ``parallel``; ...), with an
    explicit allowlist for the documented lazy-import cycle breaks.
``L002`` bitwise-purity
    No ``math.*`` transcendentals or float-accumulating builtins in
    the kernel-parity modules — the PR 1 rule that ``math.atan`` vs
    ``np.arctan`` differ by 1 ulp and silently break bitwise lane
    equality.
``L003`` numba-importability
    Fused-driver loop bodies (and their ``prange`` twins) must stay
    plain module-level, closure-free functions using nopython-safe
    constructs — the interpreted-validation tests rely on it.
``L004`` digest-completeness
    Every semantic ``EnsembleSpec``/``DriveSpec`` dataclass field must
    reach the ``spec_digest`` payload (a field that skips the digest
    serves stale cache entries), modulo the execution-shape exclusion
    list.
``L005`` concurrency-hygiene
    Caller-owned pools are never closed by executors, worker-side
    ``SharedMemory`` attaches silence the resource tracker (CPython
    gh-82300), and mutable default arguments are banned in
    ``parallel``/``service``.

Run it as ``python -m repro.lint`` (exit non-zero on violations,
``--format json|text``, per-rule ``--select``/``--ignore``).  Inline
pragmas suppress a rule on one line, with an optional justification
after ``--``::

    x = math.atan(y)  # repro-lint: disable=L002 -- scalar-only path

New rules register the way array backends do: subclass
:class:`~repro.lint.base.Rule` and decorate with
:func:`~repro.lint.base.register_rule` (see ``repro/lint/rules/``).
"""

from __future__ import annotations

from repro.lint.base import (
    ImportEdge,
    Module,
    Project,
    Rule,
    Violation,
    get_rule,
    list_rules,
    register_rule,
)
from repro.lint.runner import DEFAULT_ROOT, lint_paths

__all__ = [
    "DEFAULT_ROOT",
    "ImportEdge",
    "Module",
    "Project",
    "Rule",
    "Violation",
    "get_rule",
    "lint_paths",
    "list_rules",
    "register_rule",
]
