"""The common protocol every hysteresis model family speaks.

The paper's claims are comparative — the timeless slope discretisation
against classic time-domain Jiles-Atherton integration and against
Preisach-type congruency — so the repo needs every model family to be
drivable by the same experiment code.  Two structural protocols capture
the contract:

:class:`HysteresisModel`
    One core, driven one field sample at a time.  ``apply_field`` is the
    only way the history advances (*step*); the ``h``/``m``/``b``
    properties observe without mutating (*peek*).  ``snapshot`` /
    ``restore`` bracket speculative excursions — a conforming model
    restored from a snapshot retraces the exact trajectory it would have
    produced had the excursion never happened.

:class:`BatchHysteresisModel`
    N cores of one family advanced in lockstep, one vectorised update
    per driver sample, each lane **bitwise identical** to the scalar
    model over the same samples.  The model-agnostic executor
    (:func:`repro.batch.sweep.run_batch_series`) drives any conforming
    batch model and records its trajectories, per-sample extras and
    per-core counter totals without knowing the family.

    A batch model **may** additionally implement the optional fused
    sweep hook ``step_series(h_samples) -> (m, b, updated, extras)``:
    one call advancing the whole (validated, non-empty) sample axis,
    leaving state and counters exactly as per-sample ``step`` calls
    would have.  The executor uses it when present — eliminating the
    per-sample Python round-trip — and falls back to the per-sample
    loop otherwise; it is deliberately not part of the runtime
    protocol, so third-party families conform without it.

Both protocols are ``runtime_checkable``: conformance is structural
(duck-typed), so model classes do not import this module — the registry
(:mod:`repro.models.registry`) and the generic conformance suite
(``tests/test_models_protocol.py``) assert it from the outside.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class HysteresisModel(Protocol):
    """One hysteretic core driven by field samples (no time axis)."""

    @property
    def h(self) -> float:
        """Currently applied field [A/m]."""
        ...

    @property
    def m(self) -> float:
        """Magnetisation [A/m]."""
        ...

    @property
    def m_normalised(self) -> float:
        """Normalised magnetisation ``m = M / Msat`` (family-defined scale)."""
        ...

    @property
    def b(self) -> float:
        """Flux density [T]."""
        ...

    def reset(self) -> None:
        """Return to the family's initial (demagnetised) state."""
        ...

    def apply_field(self, h: float) -> float:
        """Apply one field sample [A/m]; return the updated B [T]."""
        ...

    def apply_field_series(self, h_values) -> np.ndarray:
        """Apply a sample sequence; return B [T] after each sample."""
        ...

    def trace(self, h_values) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply a sample sequence; return ``(h, m, b)`` arrays."""
        ...

    def snapshot(self) -> Any:
        """Opaque copy of the full mutable state (incl. statistics)."""
        ...

    def restore(self, snap: Any) -> None:
        """Return to a previously taken :meth:`snapshot` exactly."""
        ...


@runtime_checkable
class BatchHysteresisModel(Protocol):
    """N cores of one family advanced in lockstep per driver sample."""

    #: Family tag (``"timeless"``, ``"preisach"``, ``"time-domain"``);
    #: stamped onto :class:`repro.batch.sweep.BatchSweepResult`.
    family: str

    @property
    def n_cores(self) -> int:
        ...

    @property
    def h(self) -> np.ndarray:
        """Currently applied field per core [A/m]."""
        ...

    @property
    def m(self) -> np.ndarray:
        """Magnetisation per core [A/m]."""
        ...

    @property
    def m_normalised(self) -> np.ndarray:
        ...

    @property
    def b(self) -> np.ndarray:
        """Flux density per core [T]."""
        ...

    def begin_series(self, h_initial) -> None:
        """Reset every lane for a fresh series starting at ``h_initial``.

        Families with a meaningful initial field adopt it (the timeless
        and time-domain integrators start their histories there); the
        Preisach relays ignore it — their demagnetised staircase is
        field-free and the first driver sample switches from it.
        """
        ...

    def step(self, h_new) -> Any:
        """Advance every lane by one driver sample (scalar = shared).

        The return value exposes the per-lane "state advanced" mask —
        either directly as a boolean array or as an ``accepted``
        attribute (the timeless engine returns its full kernel output).
        """
        ...

    def counter_totals(self) -> dict[str, np.ndarray]:
        """Cumulative per-core event counters, keyed by family-specific
        names (fresh copies; safe to retain)."""
        ...

    def probe_extras(self) -> dict[str, np.ndarray]:
        """Extra per-core channels to record each sample (may be empty);
        e.g. the timeless family exposes ``m_an``."""
        ...

    def driver_step_hint(self) -> float:
        """A sensible driver sample spacing [A/m] for waypoint walks."""
        ...

    def snapshot(self) -> Any:
        ...

    def restore(self, snap: Any) -> None:
        ...


def is_batch_model(model: Any) -> bool:
    """One shared batch-vs-scalar dispatch test.

    Structural (the protocols are duck-typed), used by every entry
    point that accepts either kind of model so the dispatchers cannot
    drift apart.
    """
    return isinstance(model, BatchHysteresisModel)


def updated_mask(step_result: Any, n_cores: int) -> np.ndarray:
    """Normalise a :meth:`BatchHysteresisModel.step` return value to a
    per-lane boolean "state advanced" mask.

    Accepts a boolean array, anything with an ``accepted`` attribute
    (the timeless kernel's :class:`~repro.core.kernel.StepOutputs`), or
    ``None`` (no information: all False).
    """
    if step_result is None:
        return np.zeros(n_cores, dtype=bool)
    accepted = getattr(step_result, "accepted", step_result)
    mask = np.asarray(accepted)
    if mask.shape == ():
        mask = np.full(n_cores, bool(mask))
    return mask.astype(bool, copy=False)
