"""Model-family protocol layer.

Every hysteresis implementation in the repo — the timeless JA core, the
discrete Preisach grid, the classic time-domain chain — conforms to one
scalar protocol (:class:`HysteresisModel`) and one batch protocol
(:class:`BatchHysteresisModel`), and registers a
:class:`~repro.models.registry.ModelFamily` record mapping the family
name to scalar/ensemble/batch factories.  Generic code (the
model-agnostic batch executor, the scenario-grid experiments, the
conformance suite) talks to these protocols only.
"""

from repro.models.protocol import (
    BatchHysteresisModel,
    HysteresisModel,
    is_batch_model,
    updated_mask,
)
from repro.models.registry import (
    ModelFamily,
    get_family,
    list_families,
    perturbed_parameters,
    register_family,
    unregister_family,
)

__all__ = [
    "BatchHysteresisModel",
    "HysteresisModel",
    "ModelFamily",
    "get_family",
    "is_batch_model",
    "list_families",
    "perturbed_parameters",
    "register_family",
    "unregister_family",
    "updated_mask",
]
