"""Registry of hysteresis model families.

One :class:`ModelFamily` record per implementation family maps the
family name to factories for scalar models, heterogeneous scalar
ensembles and the stacked batch model, so generic code — the protocol
conformance suite, the scenario-grid experiment EXP-X5, the non-JA
batch benchmark — can iterate over *all* families without knowing any
of them:

    for family in list_families():
        batch = family.make_batch(n_cores=8, seed=0)
        result = run_batch_series(batch, samples)

Families register themselves here at import; third-party families can
call :func:`register_family` with their own record.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.ja.parameters import PAPER_PARAMETERS, JAParameters


@dataclass(frozen=True)
class ModelFamily:
    """One registered hysteresis model family.

    Attributes
    ----------
    name:
        Registry key (``"timeless"``, ``"preisach"``, ``"time-domain"``).
    description:
        One-line description for listings and experiment tables.
    make_models:
        ``(n, seed) -> list`` of N heterogeneous scalar models
        conforming to :class:`repro.models.protocol.HysteresisModel`.
    stack:
        Stacks a scalar-model list into the family's batch model
        (each family's ``from_scalar_models``).
    h_scale:
        A drive amplitude [A/m] that exercises the family's full loop
        (used by generic tests and scenario defaults).
    extras_channels:
        The per-sample channels the family's batch model records
        (``probe_extras`` keys) — the output schema the sharded
        executor (:mod:`repro.parallel`) allocates shared buffers from.
        Each entry is either a bare channel name (``float64``, the
        overwhelmingly common case) or a ``(name, dtype)`` pair for
        families recording integer/boolean channels;
        :meth:`extras_schema` resolves the normalised mapping.
    counter_channels:
        Names of the per-core counter totals (``counter_totals`` keys),
        ``int64`` each.  Documentation/introspection only: the sharded
        executor collects counters from the workers' actual totals, so
        lazily registered counters need no registry entry.
    batch_from_payload:
        Rebuilds the family's batch model from a picklable
        ``shard_payload`` dict (each engine's ``from_shard_payload``) —
        how pool workers reconstruct their sub-ensemble without
        shipping live models.
    """

    name: str
    description: str
    make_models: Callable[[int, int], list]
    stack: Callable[[Sequence], object]
    h_scale: float = 10e3
    extras_channels: "tuple[str | tuple[str, str], ...]" = ()
    counter_channels: tuple[str, ...] = ()
    batch_from_payload: Callable[[dict], object] | None = None

    def extras_schema(self) -> "dict[str, np.dtype]":
        """The extras channels as ``{name: dtype}`` — bare names resolve
        to ``float64``, ``(name, dtype)`` entries to their declared
        dtype.  This is the allocation schema of the sharded executor's
        shared output buffers; a wrong declared dtype would silently
        coerce what the in-process executor records from the probed
        arrays, so families with non-float extras must declare them."""
        schema: dict[str, np.dtype] = {}
        for entry in self.extras_channels:
            if isinstance(entry, str):
                schema[entry] = np.dtype(np.float64)
            else:
                name, dtype = entry
                schema[name] = np.dtype(dtype)
        return schema

    def make_scalar(self, seed: int = 0):
        """One scalar model of this family."""
        return self.make_models(1, seed)[0]

    def make_batch(self, n_cores: int, seed: int = 0, backend=None):
        """A stacked batch model over a heterogeneous ensemble.

        ``backend`` selects the array backend (name or
        :class:`repro.backend.ArrayBackend`); ``None`` resolves the
        ``REPRO_BACKEND`` environment default (:func:`repro.backend.
        resolve_backend`) — this is one of the surfaces where the
        environment wins, unlike direct engine construction.
        """
        return self._on_backend(self.stack(self.make_models(n_cores, seed)), backend)

    def make_pair(self, n_cores: int, seed: int = 0, backend=None):
        """Matched ``(batch, scalars)`` built from the *same* ensemble —
        the inputs of a lane-by-lane equivalence check (bitwise on
        exact backends, ``rtol``-tiered on JIT backends)."""
        scalars = self.make_models(n_cores, seed)
        reference = self.make_models(n_cores, seed)
        return self._on_backend(self.stack(scalars), backend), reference

    @staticmethod
    def _on_backend(batch, backend):
        from repro.backend import resolve_backend

        if hasattr(batch, "use_backend"):
            batch.use_backend(resolve_backend(backend))
        return batch


_FAMILIES: dict[str, ModelFamily] = {}


def register_family(family: ModelFamily) -> ModelFamily:
    if family.name in _FAMILIES:
        raise ParameterError(f"duplicate model family {family.name!r}")
    _FAMILIES[family.name] = family
    return family


def unregister_family(name: str) -> ModelFamily:
    """Remove a registered family (tests and plug-in teardown).

    The built-in families are permanent: code all over the repo names
    them, so removing one would only manufacture confusing failures.
    """
    if name in ("timeless", "preisach", "time-domain"):
        raise ParameterError(f"cannot unregister built-in family {name!r}")
    try:
        return _FAMILIES.pop(name)
    except KeyError:
        known = ", ".join(sorted(_FAMILIES))
        raise ParameterError(f"unknown model family {name!r}; known: {known}")


def get_family(name: str) -> ModelFamily:
    try:
        return _FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(_FAMILIES))
        raise ParameterError(f"unknown model family {name!r}; known: {known}")


def list_families() -> list[ModelFamily]:
    return [_FAMILIES[k] for k in sorted(_FAMILIES)]


def perturbed_parameters(
    n: int, seed: int = 0, base: JAParameters = PAPER_PARAMETERS
) -> list[JAParameters]:
    """Reproducible heterogeneous JA parameter sets around ``base``.

    The shared ensemble recipe of the family factories: ±30% log-uniform
    on ``k``/``m_sat``, ``c`` in [0.05, 0.4].
    """
    rng = np.random.default_rng(seed)

    def perturb(value: float, spread: float = 0.3) -> float:
        return float(
            value * np.exp(rng.uniform(np.log(1 - spread), np.log(1 + spread)))
        )

    return [
        base.with_updates(
            k=perturb(base.k),
            m_sat=perturb(base.m_sat),
            c=float(rng.uniform(0.05, 0.4)),
            name=f"{base.name}-pert-{seed}-{i}",
        )
        for i in range(n)
    ]


# -- built-in families -------------------------------------------------------


def _make_timeless_models(n: int, seed: int = 0) -> list:
    from repro.core.model import TimelessJAModel

    rng = np.random.default_rng(seed + 17)
    params = perturbed_parameters(n, seed)
    return [
        TimelessJAModel(
            params[i],
            dhmax=float(rng.uniform(25.0, 100.0)),
            accept_equal=bool(rng.random() < 0.5),
        )
        for i in range(n)
    ]


def _stack_timeless(models: Sequence) -> object:
    from repro.batch.engine import BatchTimelessModel

    return BatchTimelessModel.from_scalar_models(list(models))


def _timeless_from_payload(payload: dict) -> object:
    from repro.batch.engine import BatchTimelessModel

    return BatchTimelessModel.from_shard_payload(payload)


@lru_cache(maxsize=8)
def _identified_preisach_ensemble(
    n: int, seed: int, n_cells: int, h_sat: float, dhmax: float
) -> tuple:
    """Identify N Preisach cores from perturbed JA sets (cached: the
    FORC measurement behind each identification is the expensive part)."""
    from repro.preisach.identification import identify_from_ja

    params = perturbed_parameters(n, seed)
    return tuple(
        identify_from_ja(p, n_cells=n_cells, h_sat=h_sat, dhmax=dhmax)[0]
        for p in params
    )


def _make_preisach_models(
    n: int,
    seed: int = 0,
    n_cells: int = 12,
    h_sat: float = 20e3,
    dhmax: float = 400.0,
) -> list:
    """N Preisach cores, each Everett-identified against a perturbed JA
    set.  Coarse defaults keep the registry factory quick; experiments
    that need finer grids identify their own ensembles."""
    models = _identified_preisach_ensemble(n, seed, n_cells, h_sat, dhmax)
    return [model.clone() for model in models]


def _stack_preisach(models: Sequence) -> object:
    from repro.batch.preisach import BatchPreisachModel

    return BatchPreisachModel.from_scalar_models(list(models))


def _preisach_from_payload(payload: dict) -> object:
    from repro.batch.preisach import BatchPreisachModel

    return BatchPreisachModel.from_shard_payload(payload)


def _make_time_domain_models(n: int, seed: int = 0) -> list:
    from repro.baselines.time_domain import TimeDomainJAModel
    from repro.core.slope import SlopeGuards

    params = perturbed_parameters(n, seed)
    return [TimeDomainJAModel(p, guards=SlopeGuards.paper()) for p in params]


def _stack_time_domain(models: Sequence) -> object:
    from repro.batch.time_domain import BatchTimeDomainModel

    return BatchTimeDomainModel.from_scalar_models(list(models))


def _time_domain_from_payload(payload: dict) -> object:
    from repro.batch.time_domain import BatchTimeDomainModel

    return BatchTimeDomainModel.from_shard_payload(payload)


register_family(
    ModelFamily(
        name="timeless",
        description="timeless slope discretisation (the paper's model)",
        make_models=_make_timeless_models,
        stack=_stack_timeless,
        extras_channels=("m_an",),
        counter_channels=(
            "euler_steps",
            "clamped_slopes",
            "dropped_increments",
        ),
        batch_from_payload=_timeless_from_payload,
    )
)

register_family(
    ModelFamily(
        name="preisach",
        description="discrete Preisach relay grid (Everett-identified)",
        make_models=_make_preisach_models,
        stack=_stack_preisach,
        h_scale=20e3,
        counter_channels=("switch_events",),
        batch_from_payload=_preisach_from_payload,
    )
)

register_family(
    ModelFamily(
        name="time-domain",
        description="classic dM/dH forward-Euler chain (pre-paper)",
        make_models=_make_time_domain_models,
        stack=_stack_time_domain,
        counter_channels=(
            "steps",
            "slope_evaluations",
            "negative_slope_evaluations",
            "diverged",
        ),
        batch_from_payload=_time_domain_from_payload,
    )
)
