"""Sharded multi-process execution for batch ensembles.

The scaling layer above :mod:`repro.batch`: split any conforming
:class:`~repro.models.protocol.BatchHysteresisModel` into contiguous
lane shards, drive the shards on a ``multiprocessing`` pool with
shared-memory output buffers, and reassemble a
:class:`~repro.batch.sweep.BatchSweepResult` **bitwise identical** to
the single-process run::

    from repro.parallel import EnsembleSpec, run_sharded

    spec = EnsembleSpec(family="timeless", n_cores=512, seed=0)
    result = run_sharded(
        spec, scenario="minor-loop-ladder", h_max=10e3, n_workers=4
    )

Prefer the in-process batch engine for small ensembles or short drives
(one vectorised NumPy loop has no fork/IPC overhead); shard when the
per-sample work is large enough to saturate a core — wide Preisach
relay tensors, long scenario campaigns, grid sweeps
(:func:`run_scenario_grid`).
"""

from repro.parallel.blocks import (
    BlockBudget,
    LaneBlock,
    iter_shard_blocks,
    plan_lane_blocks,
)
from repro.parallel.executor import (
    MAX_WORKERS_ENV,
    available_cpus,
    resolve_workers,
    run_sharded,
)
from repro.parallel.grid import GridCell, run_scenario_grid
from repro.parallel.plan import plan_shards
from repro.parallel.spec import DriveSpec, EnsembleSpec, ShardSpec

__all__ = [
    "MAX_WORKERS_ENV",
    "BlockBudget",
    "DriveSpec",
    "EnsembleSpec",
    "GridCell",
    "LaneBlock",
    "ShardSpec",
    "available_cpus",
    "iter_shard_blocks",
    "plan_lane_blocks",
    "plan_shards",
    "resolve_workers",
    "run_scenario_grid",
    "run_sharded",
]
