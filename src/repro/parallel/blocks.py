"""Bounded lane-block streaming for shard execution.

A :class:`~repro.parallel.spec.ShardSpec` normally materialises its
whole ``(samples, width)`` result before anything downstream sees it.
At million-lane scale that buffer is the memory ceiling, so this module
splits a shard's *result* axis into contiguous **lane blocks**: the
shard's sub-ensemble is built once, then each block re-shards it
(``batch.shard(a, b)`` — a freshly reset sub-batch, bitwise per lane,
the PR 3 guarantee) and runs only that column range.  Concatenating the
blocks back in lane order is the same column concatenation the sharded
executor already relies on, so chunked execution is **bitwise
identical** to the unchunked shard run.

One code path serves both transports: the local executor's serial and
pooled paths iterate the same :func:`iter_shard_blocks` generator the
:mod:`repro.dist` workers stream over sockets, and
:class:`BlockBudget` gives any consumer a hard ceiling on resident
result-buffer bytes (with a high-water mark for the tests to pin).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.batch.sweep import BatchSweepResult, run_batch_series
from repro.errors import ParameterError
from repro.parallel.spec import ShardSpec


@dataclass(frozen=True)
class LaneBlock:
    """One streamed slice of a shard's result: absolute lanes
    ``[start, stop)`` of the full ensemble.

    Arrays are per-sample columns for exactly this lane range;
    ``counters`` are the tiny per-lane ``(width,)`` counter arrays the
    block's run recorded.  Blocks are self-describing (absolute lane
    range plus payload), so writing one into a full-width output buffer
    is idempotent — a re-dispatched shard may rewrite its blocks after
    a worker death without corrupting anything.
    """

    start: int
    stop: int
    m: np.ndarray
    b: np.ndarray
    updated: np.ndarray
    extras: dict[str, np.ndarray] = field(default_factory=dict)
    counters: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def width(self) -> int:
        return self.stop - self.start

    @property
    def nbytes(self) -> int:
        """Resident result-buffer bytes this block holds."""
        total = self.m.nbytes + self.b.nbytes + self.updated.nbytes
        total += sum(arr.nbytes for arr in self.extras.values())
        total += sum(np.asarray(arr).nbytes for arr in self.counters.values())
        return total


def plan_lane_blocks(
    start: int, stop: int, chunk_lanes: int | None
) -> list[tuple[int, int]]:
    """Contiguous absolute lane ranges covering ``[start, stop)``, each
    at most ``chunk_lanes`` wide (``None``: one block, the whole range).

    Blocks tile the range in lane order with the remainder on the final
    block, so the plan is a pure function of ``(start, stop,
    chunk_lanes)`` — both sides of a socket derive the identical block
    sequence without negotiating it.
    """
    if stop <= start:
        raise ParameterError(
            f"lane range [{start}, {stop}) is empty; nothing to block"
        )
    if chunk_lanes is None:
        return [(start, stop)]
    if chunk_lanes < 1:
        raise ParameterError(
            f"chunk_lanes must be >= 1, got {chunk_lanes}"
        )
    return [
        (a, min(a + chunk_lanes, stop))
        for a in range(start, stop, chunk_lanes)
    ]


def run_spec(spec: ShardSpec) -> BatchSweepResult:
    """One shard, in whatever process this runs in — with the spec's
    lane-thread count pinned for exactly the duration of the run, so a
    plan's thread choice never leaks into unrelated work (and pooled
    shards, which always carry ``threads=1``, explicitly pin the
    children single-threaded rather than trusting ambient state).

    A spec carrying ``chunk_lanes`` runs through the block generator
    and reassembles — bitwise identical, bounded transient buffers.
    """
    from repro.backend import thread_limit

    if spec.chunk_lanes is None:
        with thread_limit(spec.threads):
            return run_batch_series(spec.build_batch(), spec.build_samples())
    return assemble_blocks(spec, iter_shard_blocks(spec))


def iter_shard_blocks(spec: ShardSpec):
    """Yield a shard's result as :class:`LaneBlock`\\ s in lane order.

    The shard's sub-ensemble and its shard-local samples are built
    **once**; every block is a fresh ``batch.shard`` slice of that
    sub-ensemble (reset, bitwise per lane) driven over its own sample
    columns, so at no point does a result buffer wider than
    ``spec.chunk_lanes`` lanes exist in this process.  Each block's run
    pins ``thread_limit(spec.threads)`` for exactly its own duration —
    the limit never spans a ``yield``, so consumer code between blocks
    runs under ambient threading.
    """
    from repro.backend import thread_limit

    samples = spec.build_samples()
    batch = spec.build_batch()
    bounds = plan_lane_blocks(spec.start, spec.stop, spec.chunk_lanes)
    if len(bounds) == 1:
        # Unchunked (or one-block) shards skip the re-shard: the built
        # batch *is* the block, exactly the pre-chunking code path.
        with thread_limit(spec.threads):
            part = run_batch_series(batch, samples)
        yield LaneBlock(
            start=spec.start,
            stop=spec.stop,
            m=part.m,
            b=part.b,
            updated=part.updated,
            extras=part.extras,
            counters=part.counters,
        )
        return
    for a, b in bounds:
        ra, rb = a - spec.start, b - spec.start
        sub = batch.shard(ra, rb)
        cols = samples if samples.ndim == 1 else samples[:, ra:rb]
        with thread_limit(spec.threads):
            part = run_batch_series(sub, cols)
        yield LaneBlock(
            start=a,
            stop=b,
            m=part.m,
            b=part.b,
            updated=part.updated,
            extras=part.extras,
            counters=part.counters,
        )


def assemble_blocks(spec: ShardSpec, blocks) -> BatchSweepResult:
    """Reassemble a shard's streamed blocks into the shard result.

    Lane-order column concatenation — the executor's bitwise reassembly
    argument, applied one level down.  ``h`` is the shard-local sample
    array itself (what :func:`repro.batch.sweep.run_batch_series` would
    have recorded for the unchunked run).
    """
    parts = list(blocks)
    if not parts:
        raise ParameterError(
            f"shard [{spec.start}, {spec.stop}) streamed no blocks"
        )
    keys = sorted(parts[0].extras)
    return BatchSweepResult(
        h=np.asarray(spec.build_samples(), dtype=float),
        m=np.concatenate([p.m for p in parts], axis=1),
        b=np.concatenate([p.b for p in parts], axis=1),
        updated=np.concatenate([p.updated for p in parts], axis=1),
        extras={
            key: np.concatenate([p.extras[key] for p in parts], axis=1)
            for key in keys
        },
        counters=merge_shard_counters(
            [p.counters for p in parts], [p.width for p in parts]
        ),
        family=spec.family,
    )


def merge_shard_counters(
    shard_counters: "list[dict[str, np.ndarray]]",
    widths: "list[int]",
) -> dict[str, np.ndarray]:
    """Concatenate per-shard counter dicts over the union of keys.

    A key a shard never registered (lazily appearing counters may fire
    on some lanes only) fills with zeros of that shard's width — the
    same value the full-width model would report for lanes that never
    triggered it.
    """
    keys: dict[str, np.dtype] = {}
    for counters in shard_counters:
        for key, value in counters.items():
            keys.setdefault(key, np.asarray(value).dtype)
    return {
        key: np.concatenate(
            [
                np.asarray(counters.get(key, np.zeros(width, dtype=dtype)))
                for counters, width in zip(shard_counters, widths)
            ]
        )
        for key, dtype in sorted(keys.items())
    }


class BlockBudget:
    """A hard ceiling on in-flight result-buffer bytes, with a
    high-water mark.

    Consumers ``acquire(nbytes)`` before holding a block and
    ``release(nbytes)`` once its payload has landed in the output
    buffers; acquire blocks (back-pressure, not failure) until enough
    in-flight bytes drain.  A single block larger than the ceiling is a
    configuration error — admitting it would make the ceiling a lie —
    so it raises instead of deadlocking.  ``peak`` records the largest
    in-flight total ever admitted, the number the bounded-memory tests
    pin below the configured ceiling.
    """

    def __init__(self, ceiling_bytes: int | None = None) -> None:
        if ceiling_bytes is not None and ceiling_bytes < 1:
            raise ParameterError(
                f"ceiling_bytes must be >= 1, got {ceiling_bytes}"
            )
        self.ceiling_bytes = ceiling_bytes
        self._in_flight = 0
        self._peak = 0
        self._cond = threading.Condition()

    @property
    def in_flight(self) -> int:
        with self._cond:
            return self._in_flight

    @property
    def peak(self) -> int:
        with self._cond:
            return self._peak

    def acquire(self, nbytes: int) -> None:
        if self.ceiling_bytes is not None and nbytes > self.ceiling_bytes:
            raise ParameterError(
                f"one {nbytes}-byte block exceeds the "
                f"{self.ceiling_bytes}-byte result-buffer ceiling; "
                "lower chunk_lanes or raise the ceiling"
            )
        with self._cond:
            if self.ceiling_bytes is not None:
                self._cond.wait_for(
                    lambda: self._in_flight + nbytes <= self.ceiling_bytes
                )
            self._in_flight += nbytes
            self._peak = max(self._peak, self._in_flight)

    def release(self, nbytes: int) -> None:
        with self._cond:
            self._in_flight = max(0, self._in_flight - nbytes)
            self._cond.notify_all()
