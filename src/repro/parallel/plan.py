"""Shard planning: split a lane ensemble into contiguous ranges.

The planner is pure arithmetic, separated from the executor so its
invariants are trivially testable: shards are contiguous, ordered,
non-overlapping, cover ``[0, n_cores)`` exactly, and differ in width by
at most one lane.  Lane order is what makes sharded reassembly a plain
column concatenation — and therefore bitwise trivial.
"""

from __future__ import annotations

from repro.errors import ParameterError


def plan_shards(
    n_cores: int, n_workers: int, min_shard: int = 1
) -> list[tuple[int, int]]:
    """Contiguous lane ranges ``[(start, stop), ...]`` for a worker pool.

    At most ``n_workers`` shards are produced, never more than
    ``n_cores``, and never so many that a shard would fall below
    ``min_shard`` lanes (small ensembles are not worth forking for —
    the per-worker fixed cost would dominate).  Widths are balanced:
    ``n_cores`` is split into near-equal parts, the remainder spread
    over the leading shards.
    """
    if n_cores < 1:
        raise ParameterError(f"n_cores must be >= 1, got {n_cores}")
    if n_workers < 1:
        raise ParameterError(f"n_workers must be >= 1, got {n_workers}")
    if min_shard < 1:
        raise ParameterError(f"min_shard must be >= 1, got {min_shard}")
    n_shards = min(n_workers, n_cores, max(1, n_cores // min_shard))
    base, extra = divmod(n_cores, n_shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for i in range(n_shards):
        width = base + (1 if i < extra else 0)
        bounds.append((start, start + width))
        start += width
    return bounds
