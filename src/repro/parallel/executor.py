"""Sharded multi-process execution of batch ensembles.

:func:`run_sharded` splits any conforming batch ensemble into
contiguous lane shards (:mod:`repro.parallel.plan`), drives each shard
through the ordinary in-process executor
(:func:`repro.batch.sweep.run_batch_series`) on a ``multiprocessing``
worker pool, and reassembles a
:class:`~repro.batch.sweep.BatchSweepResult` that is **bitwise
identical** to the single-process run: every lane's computation is
independent and the batch engines are bitwise per lane, so splitting
the lane axis and concatenating the columns back cannot change a single
bit — of ``h``/``m``/``b``/``updated``, the extras channels, or the
per-core counters.

Workers never receive live models (see :mod:`repro.parallel.spec`) and
never pickle trajectories back: the parent allocates one shared-memory
block per per-sample output channel and each worker writes its column
range in place.  Only the per-core counters — tiny ``(width,)`` arrays
whose key set a family may even grow mid-run — return through the
worker result.  ``n_workers=1`` (or a single planned shard) falls back
to a serial in-process loop over the same shard specs — same code
path, no processes, no shared memory.

The ``REPRO_PARALLEL_MAX_WORKERS`` environment variable caps the
effective worker count regardless of what callers request (CI runners
set it to stay within their core allowance).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from multiprocessing import get_context, resource_tracker, shared_memory

import numpy as np

from repro.backend import resolve_backend
from repro.batch.sweep import BatchSweepResult
from repro.errors import ParameterError
from repro.models.protocol import is_batch_model
from repro.models.registry import get_family
from repro.parallel.blocks import (
    iter_shard_blocks,
    merge_shard_counters,
    run_spec,
)
from repro.parallel.plan import plan_shards
from repro.parallel.spec import DriveSpec, EnsembleSpec, ShardSpec

#: Environment cap on the effective worker count (runner-safe CI knob).
MAX_WORKERS_ENV = "REPRO_PARALLEL_MAX_WORKERS"


def available_cpus() -> int:
    """CPUs this process may use (affinity-aware when the OS exposes it)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def resolve_workers(n_workers: int | None = None) -> int:
    """The effective worker count: requested (default: all CPUs), then
    clamped by the :data:`MAX_WORKERS_ENV` environment cap."""
    workers = available_cpus() if n_workers is None else n_workers
    if workers < 1:
        raise ParameterError(f"n_workers must be >= 1, got {workers}")
    cap = os.environ.get(MAX_WORKERS_ENV)
    if cap:
        try:
            cap_value = int(cap)
        except ValueError:
            raise ParameterError(
                f"{MAX_WORKERS_ENV} must be an integer, got {cap!r}"
            )
        if cap_value < 1:
            # A sub-1 cap is a configuration error, not "serial please":
            # silently clamping it to 1 would mask a broken CI matrix
            # entry (the historical behaviour) — fail loudly instead.
            raise ParameterError(
                f"{MAX_WORKERS_ENV} must be >= 1, got {cap_value}"
            )
        workers = min(workers, cap_value)
    return workers


@dataclass(frozen=True)
class _Block:
    """One shared-memory output array, described picklably."""

    shm_name: str
    shape: tuple[int, ...]
    dtype: str

    def attach(self) -> tuple[shared_memory.SharedMemory, np.ndarray]:
        """Worker-side attach, without resource-tracker registration.

        The parent owns (creates, unlinks, and tracks) every segment;
        an attach that registers it again confuses the tracker into
        "leaked shared_memory" warnings or spurious unlinks at shutdown
        (CPython gh-82300 — Python 3.13 grew ``track=False`` for
        exactly this).  Workers are single-threaded, so temporarily
        silencing the register hook is safe on 3.11/3.12 too.
        """
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=self.shm_name)
        finally:
            resource_tracker.register = original
        return shm, np.ndarray(self.shape, dtype=self.dtype, buffer=shm.buf)


@dataclass(frozen=True)
class _OutputLayout:
    """The shared output schema of one sharded run.

    Only the per-sample channels live in shared memory; per-core
    counters are tiny ``(width,)`` arrays and travel back in the worker
    return value instead — which also means the counter key set never
    has to be known before the run (a conforming family may register a
    counter lazily mid-run, the contract
    :func:`repro.batch.sweep.run_batch_series` supports).
    """

    m: _Block
    b: _Block
    updated: _Block
    extras: dict[str, _Block]


class _CellJob:
    """One sharded run, planned: specs, schema, and (later) buffers."""

    def __init__(
        self,
        family: str,
        n_total: int,
        h_full: np.ndarray,
        specs: list[ShardSpec],
        extras_schema: "dict[str, np.dtype]",
    ) -> None:
        self.family = family
        self.n_total = n_total
        self.h_full = h_full
        self.specs = specs
        self.extras_schema = extras_schema
        self.extras_keys = tuple(sorted(extras_schema))
        self.layout: _OutputLayout | None = None
        self._shm: dict[str, shared_memory.SharedMemory] = {}

    # -- shared-memory lifecycle ------------------------------------------

    def _alloc(self, shape: tuple[int, ...], dtype) -> _Block:
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        self._shm[shm.name] = shm
        return _Block(shm.name, shape, np.dtype(dtype).str)

    def allocate(self) -> None:
        samples = len(self.h_full)
        wide = (samples, self.n_total)
        # Extras blocks allocate from each channel's schema dtype (probed
        # from the live batch, or declared by the family registry record):
        # a hard-coded float64 block would silently coerce the integer and
        # boolean channels the in-process executor preserves.
        self.layout = _OutputLayout(
            m=self._alloc(wide, np.float64),
            b=self._alloc(wide, np.float64),
            updated=self._alloc(wide, np.bool_),
            extras={
                key: self._alloc(wide, dtype)
                for key, dtype in self.extras_schema.items()
            },
        )

    def assemble(self, metas) -> BatchSweepResult:
        """Copy the shared buffers out into an ordinary result (reusing
        the creation handles — no second attach, no extra tracker
        registration); counters come from the worker metadata."""
        layout = self.layout

        def copy_out(block: _Block) -> np.ndarray:
            shm = self._shm[block.shm_name]
            return np.ndarray(
                block.shape, dtype=block.dtype, buffer=shm.buf
            ).copy()

        return BatchSweepResult(
            h=self.h_full,
            m=copy_out(layout.m),
            b=copy_out(layout.b),
            updated=copy_out(layout.updated),
            extras={k: copy_out(v) for k, v in layout.extras.items()},
            counters=merge_shard_counters(
                [meta[3] for meta in metas],
                [spec.width for spec in self.specs],
            ),
            family=self.family,
        )

    def release(self) -> None:
        for shm in self._shm.values():
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double release
                pass
        self._shm = {}
        self.layout = None


def _extras_schema(source) -> "dict[str, np.dtype]":
    """Extras channel schema ``{name: dtype}``: probed from a live
    batch, else declared by the family registry record.  Extras are
    structural state channels (stable over a run), so the pre-run
    schema is authoritative — unlike counters, which travel back per
    shard instead — and it carries each channel's dtype so the shared
    output buffers preserve integer/boolean channels exactly as the
    in-process executor does."""
    if is_batch_model(source):
        return {
            key: np.asarray(value).dtype
            for key, value in source.probe_extras().items()
        }
    return get_family(source.family).extras_schema()


def prepare_job(
    source,
    drive: DriveSpec,
    n_workers: int,
    min_shard: int,
    threads: int = 1,
    chunk_lanes: int | None = None,
) -> _CellJob:
    """Plan one sharded run: full-width samples, shard specs, schema.

    An :class:`EnsembleSpec` with ``backend=None`` is pinned to the
    parent's resolved backend here, so workers rebuild their shards on
    the backend the parent planned with rather than re-reading their
    own ``REPRO_BACKEND`` environment.  (Live batch models already
    carry the backend name inside their ``shard_payload``.)

    ``threads`` is stamped into every :class:`ShardSpec` so whichever
    process runs a shard pins that lane-thread count for its duration
    (see :func:`repro.parallel.blocks.run_spec`); callers enforce the
    oversubscription rule before it gets here (:func:`run_sharded`
    clamps plans to ``workers x threads <= available_cpus()``).
    ``chunk_lanes`` likewise travels inside each spec: the executing
    process streams its shard in lane blocks at most that wide
    (:mod:`repro.parallel.blocks`) instead of materialising the whole
    shard result at once.
    """
    if is_batch_model(source):
        family, n_total = source.family, source.n_cores
    elif isinstance(source, EnsembleSpec):
        if source.backend is None:
            source = replace(source, backend=resolve_backend(None).name)
        family, n_total = source.family, source.n_cores
    else:
        raise ParameterError(
            "run_sharded needs a BatchHysteresisModel or an EnsembleSpec, "
            f"got {type(source).__name__}"
        )
    h_full = drive.full_samples(n_total)

    bounds = plan_shards(n_total, n_workers, min_shard)
    specs = []
    for start, stop in bounds:
        if h_full.ndim == 2:
            # Pre-slice per-core drives (explicit or scenario-built):
            # each worker receives only its own columns instead of K
            # pickled copies — or K full-width rebuilds — of the whole
            # matrix (ShardSpec treats explicit samples as shard-local).
            # Shared 1-D scenario drives stay name-sized; rebuilding a
            # vector worker-side is cheaper than shipping it.
            shard_drive = DriveSpec(samples=h_full[:, start:stop])
        else:
            shard_drive = drive
        if is_batch_model(source):
            specs.append(
                ShardSpec(
                    family=family,
                    n_cores_total=n_total,
                    start=start,
                    stop=stop,
                    drive=shard_drive,
                    payload=source.shard_payload(start, stop),
                    threads=threads,
                    chunk_lanes=chunk_lanes,
                )
            )
        else:
            specs.append(
                ShardSpec(
                    family=family,
                    n_cores_total=n_total,
                    start=start,
                    stop=stop,
                    drive=shard_drive,
                    ensemble=source,
                    threads=threads,
                    chunk_lanes=chunk_lanes,
                )
            )
    return _CellJob(family, n_total, h_full, specs, _extras_schema(source))


def _resolve_drive(
    source,
    h_samples,
    scenario: str | None,
    h_max: float | None,
    driver_step: float | None,
) -> "tuple[DriveSpec, object | None]":
    """Build the DriveSpec, resolving the driver step *before* sharding
    (a shard's own ``driver_step_hint`` may differ from the full
    ensemble's, which would break bitwise equality).

    Returns ``(drive, built_batch)``: when an :class:`EnsembleSpec`
    recipe had to be materialised just for its hint, the built batch
    comes back so the caller can shard it directly instead of paying
    the construction a second time.
    """
    if (h_samples is None) == (scenario is None):
        raise ParameterError(
            "run_sharded needs exactly one of h_samples / scenario"
        )
    if h_samples is not None:
        return DriveSpec(samples=np.asarray(h_samples, dtype=float)), None
    if h_max is None:
        raise ParameterError(f"scenario {scenario!r} needs h_max")
    built = None
    if driver_step is None:
        if is_batch_model(source):
            driver_step = source.driver_step_hint()
        else:
            built = source.build_batch()
            driver_step = built.driver_step_hint()
    drive = DriveSpec(
        scenario=scenario, h_max=float(h_max), driver_step=float(driver_step)
    )
    return drive, built


# The shard runner itself lives in repro.parallel.blocks (one code
# path whether a shard streams over shared memory or a repro.dist
# socket); the historic private name stays importable for callers that
# grew up against the executor.
_run_spec = run_spec


def _recorded_extras_schema(extras: "dict[str, np.ndarray]") -> tuple:
    """A shard's recorded extras as sorted ``(name, dtype-str)`` pairs —
    the shape both executor paths compare against the pre-run schema."""
    return tuple(sorted((key, value.dtype.str) for key, value in extras.items()))


def _check_extras_schema(job: _CellJob, start: int, stop: int, recorded) -> None:
    """Key *and* dtype drift between the planned schema and what a shard
    actually recorded is an error, not a silently coerced buffer."""
    expected = tuple(
        sorted(
            (key, np.dtype(dtype).str)
            for key, dtype in job.extras_schema.items()
        )
    )
    if tuple(recorded) != expected:
        raise ParameterError(
            f"shard [{start}, {stop}) of family {job.family!r} recorded "
            f"extras {list(recorded)}, expected {list(expected)}; the "
            "schema (registry declaration or pre-run probe) is stale"
        )


def run_job_serial(job: _CellJob) -> BatchSweepResult:
    """The n_workers=1 fallback: same shard specs, no processes, no
    shared memory — plain column concatenation."""
    parts = [run_spec(spec) for spec in job.specs]
    for spec, part in zip(job.specs, parts):
        # The same schema check the pooled path applies in _worker.
        _check_extras_schema(
            job, spec.start, spec.stop, _recorded_extras_schema(part.extras)
        )
    return BatchSweepResult(
        h=job.h_full,
        m=np.concatenate([p.m for p in parts], axis=1),
        b=np.concatenate([p.b for p in parts], axis=1),
        updated=np.concatenate([p.updated for p in parts], axis=1),
        extras={
            key: np.concatenate([p.extras[key] for p in parts], axis=1)
            for key in job.extras_keys
        },
        counters=merge_shard_counters(
            [p.counters for p in parts], [spec.width for spec in job.specs]
        ),
        family=job.family,
    )


def _worker(task: tuple[ShardSpec, _OutputLayout]):
    """Pool entry point: rebuild, run, write columns into shared memory.

    The shard streams through :func:`repro.parallel.blocks.
    iter_shard_blocks` — one block for an unchunked spec (the historic
    path, unchanged), several bounded blocks when the spec carries
    ``chunk_lanes`` — and every block's columns land in the shared
    buffers as soon as they exist, so a chunked worker never holds more
    than one block of result data.
    """
    spec, layout = task
    attached: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}

    def view(block: _Block) -> np.ndarray:
        if block.shm_name not in attached:
            attached[block.shm_name] = block.attach()
        return attached[block.shm_name][1]

    recorded = None
    block_counters: list[dict[str, np.ndarray]] = []
    widths: list[int] = []
    try:
        for blk in iter_shard_blocks(spec):
            schema = _recorded_extras_schema(blk.extras)
            if recorded is None:
                recorded = schema
            elif schema != recorded:
                raise ParameterError(
                    f"family {spec.family!r} shard [{spec.start}, "
                    f"{spec.stop}) drifted its extras schema between lane "
                    f"blocks: {list(schema)} != {list(recorded)}"
                )
            view(layout.m)[:, blk.start : blk.stop] = blk.m
            view(layout.b)[:, blk.start : blk.stop] = blk.b
            view(layout.updated)[:, blk.start : blk.stop] = blk.updated
            for key, block in layout.extras.items():
                if key not in blk.extras:
                    raise ParameterError(
                        f"family {spec.family!r} recorded no {key!r} extras "
                        f"channel (got {sorted(blk.extras)}); the registry "
                        "schema is stale"
                    )
                values = blk.extras[key]
                if values.dtype.str != block.dtype:
                    raise ParameterError(
                        f"family {spec.family!r} recorded {key!r} extras as "
                        f"{values.dtype}, but the shared buffer was allocated "
                        f"as {np.dtype(block.dtype)}; the schema (registry "
                        "declaration or pre-run probe) is stale"
                    )
                view(block)[:, blk.start : blk.stop] = values
            block_counters.append(blk.counters)
            widths.append(blk.width)
    finally:
        for shm, _ in attached.values():
            shm.close()
    return (
        spec.start,
        spec.stop,
        recorded,
        merge_shard_counters(block_counters, widths),
    )


def _check_meta(job: _CellJob, metas) -> None:
    """Workers report which extras (names and dtypes) they recorded;
    any schema drift is an error, not a silently half-written buffer."""
    for start, stop, recorded, _ in metas:
        _check_extras_schema(job, start, stop, recorded)


def execute_jobs_pooled(pool, jobs: "list[_CellJob]") -> list[BatchSweepResult]:
    """Run every job's shards on one pool and assemble per job.

    The single shared allocate → map → check → assemble → release
    sequence behind both :func:`run_sharded` (one job) and
    :func:`repro.parallel.grid.run_scenario_grid` (a chunk of cells).
    Buffers are always released, success or not.
    """
    try:
        tasks = []
        for job in jobs:
            job.allocate()
            tasks.extend((spec, job.layout) for spec in job.specs)
        metas = pool.map(_worker, tasks)
        results = []
        cursor = 0
        for job in jobs:
            take = metas[cursor : cursor + len(job.specs)]
            cursor += len(job.specs)
            _check_meta(job, take)
            results.append(job.assemble(take))
        return results
    finally:
        for job in jobs:
            job.release()


def _apply_plan_backend(source, backend_name: str):
    """Move ``source`` onto the plan's backend; returns the (possibly
    new) source and a zero-argument restore callable.

    An :class:`EnsembleSpec` is immutable — a re-pinned copy comes back
    and nothing needs restoring.  A live batch is switched in place via
    its ``use_backend`` hook and switched back by the restore callable
    once its shard payloads (which carry the backend name) are cut, so
    the caller's batch never observably changes backend.
    """
    if is_batch_model(source):
        previous = source.backend
        source.use_backend(backend_name)
        return source, lambda: source.use_backend(previous)
    return replace(source, backend=backend_name), lambda: None


def run_sharded(
    source,
    h_samples=None,
    *,
    scenario: str | None = None,
    h_max: float | None = None,
    driver_step: float | None = None,
    n_workers: int | None = None,
    min_shard: int = 1,
    mp_context: str | None = None,
    plan=None,
    pool=None,
    chunk_lanes: int | None = None,
    hosts=None,
) -> BatchSweepResult:
    """Run one ensemble drive sharded over a process pool.

    Parameters
    ----------
    source:
        A live :class:`~repro.models.protocol.BatchHysteresisModel`
        (sharded via its ``shard_payload``) or an
        :class:`~repro.parallel.spec.EnsembleSpec` registry recipe
        (workers rebuild their lanes from it).  Either way every lane
        starts freshly reset, exactly as
        :func:`~repro.batch.sweep.run_batch_series` resets it.
    h_samples / scenario, h_max, driver_step:
        The drive: explicit driver samples (1-D shared or
        ``(samples, cores)``), or a scenario name with its amplitude.
        ``driver_step`` defaults to the *full* ensemble's hint.
    n_workers:
        Pool width; defaults to the available CPUs and is always capped
        by the ``REPRO_PARALLEL_MAX_WORKERS`` environment variable.
        ``1`` selects the serial in-process fallback.
    min_shard:
        Smallest worthwhile shard width; fewer lanes per shard than
        this and the planner reduces the shard count instead.
    mp_context:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``, ...);
        default: the platform default.
    plan:
        ``None`` (default) keeps today's explicit knobs exactly as
        documented above.  ``"auto"`` plans this run from the host's
        persisted calibration (:func:`repro.sched.planner.plan_for`); an
        :class:`~repro.sched.planner.ExecutionPlan` applies that plan
        verbatim.  A plan owns the backend / pool-width / lane-thread
        axes — it is mutually exclusive with ``n_workers`` — and is
        always clamped to this host: the pool width passes through
        :func:`resolve_workers` (environment cap included) and
        ``threads_per_worker`` is reduced so ``workers × threads``
        never exceeds the CPU affinity.
    pool:
        A live :class:`~repro.service.pool.WorkerPool` to run the
        shards on instead of spinning up (and tearing down) a one-shot
        pool.  The live pool owns the pool width — mutually exclusive
        with ``n_workers`` and ``mp_context``; a plan's width is
        additionally clamped to the pool's, and ``plan="auto"`` prices
        pooled candidates spin-up-free (the pool already paid it).
        The pool is never closed here: it outlives this call by design.
    chunk_lanes:
        Bounded-memory mode: every shard streams its result in
        contiguous lane blocks at most this wide
        (:mod:`repro.parallel.blocks`) instead of materialising the
        whole shard buffer at once.  ``None`` (default) keeps the
        one-shot path.  Chunking never changes a bit of the output —
        blocks concatenate exactly like shards do.
    hosts:
        A sequence of ``"host:port"`` worker-agent addresses
        (:mod:`repro.dist`): the run dispatches over the sockets
        instead of a local pool, streaming the same lane blocks over
        the wire.  Mutually exclusive with ``pool=`` / ``mp_context=``;
        when no listed host is reachable the run degrades to the local
        executor with a logged warning.  A resolved plan carrying
        ``hosts`` routes here too.

    Returns the same :class:`~repro.batch.sweep.BatchSweepResult` the
    single-process executor produces — bitwise, lane order preserved.
    """
    if hosts is not None:
        if pool is not None or mp_context is not None:
            raise ParameterError(
                "hosts= dispatches over repro.dist sockets; a local "
                "pool= / mp_context= cannot run remote shards"
            )
        # Lazy import: repro.dist sits above the executor in the layer
        # stack, and host-less callers never pay for (or depend on) it.
        from repro.dist.dispatch import run_distributed

        return run_distributed(
            source,
            h_samples,
            scenario=scenario,
            h_max=h_max,
            driver_step=driver_step,
            hosts=hosts,
            n_workers=n_workers,
            min_shard=min_shard,
            plan=plan,
            chunk_lanes=chunk_lanes,
        )
    if pool is not None:
        if n_workers is not None:
            raise ParameterError(
                "pass either pool= or n_workers=, not both: a live pool "
                "owns the pool width"
            )
        if mp_context is not None:
            raise ParameterError(
                "mp_context applies to the one-shot pool run_sharded "
                "creates; a live pool already carries its start method"
            )
    drive, built = _resolve_drive(
        source, h_samples, scenario, h_max, driver_step
    )
    if built is not None:
        # The recipe was materialised for its driver-step hint; shard
        # the built batch directly (payload route) rather than making
        # every worker rebuild the whole ensemble again.
        source = built
    if plan is not None:
        if n_workers is not None:
            raise ParameterError(
                "pass either plan= or n_workers=, not both: a plan owns "
                "the pool width"
            )
        # Lazy import: repro.sched sits above the executor in the layer
        # stack, and plan=None callers never pay for (or depend on) it.
        from repro.sched.planner import resolve_plan

        chosen = resolve_plan(
            plan, source, drive, min_shard=min_shard,
            warm_pool=pool is not None,
        )
        if chosen.hosts:
            # A multi-host placement plan: the dispatcher owns the run
            # (drive already resolved at full ensemble width above).
            from repro.dist.dispatch import run_distributed

            return run_distributed(
                source,
                drive=drive,
                hosts=chosen.hosts,
                plan=chosen,
                min_shard=min_shard,
                chunk_lanes=chunk_lanes,
            )
        workers = resolve_workers(chosen.n_workers)
        if pool is not None:
            workers = min(workers, pool.n_workers)
        threads = max(
            1, min(chosen.threads_per_worker, available_cpus() // workers)
        )
        source, restore_backend = _apply_plan_backend(source, chosen.backend)
        try:
            job = prepare_job(
                source, drive, workers, min_shard, threads,
                chunk_lanes=chunk_lanes,
            )
        finally:
            restore_backend()
    else:
        workers = pool.n_workers if pool is not None else resolve_workers(
            n_workers
        )
        job = prepare_job(
            source, drive, workers, min_shard, chunk_lanes=chunk_lanes
        )
    if workers == 1 or len(job.specs) == 1:
        return run_job_serial(job)
    if pool is not None:
        return pool.execute([job])[0]
    ctx = get_context(mp_context)
    with ctx.Pool(processes=min(workers, len(job.specs))) as one_shot:
        return execute_jobs_pooled(one_shot, [job])[0]
