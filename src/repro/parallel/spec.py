"""Picklable work descriptions for the sharded executor.

A pool worker never receives a live model: it receives a
:class:`ShardSpec` — which family, which contiguous lane range, and how
to rebuild that sub-ensemble (a registry recipe or a pre-sliced engine
payload) plus a :class:`DriveSpec` naming the drive — and reconstructs
everything on its side of the process boundary.  That keeps the task
pickle small, makes specs reproducible (the same spec always rebuilds
the same lanes), and is what lets the sharded run stay **bitwise**
equal to the single-process one: both sides construct the identical
sub-ensembles and slice the identical sample columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import resolve_backend
from repro.batch.lanes import check_lane_range
from repro.errors import ParameterError, ScenarioError
from repro.models.registry import get_family


@dataclass(frozen=True)
class EnsembleSpec:
    """Registry recipe for a whole batch ensemble: ``family.make_models
    (n_cores, seed)``, stacked.

    Workers rebuild the **full** scalar ensemble and slice their lane
    range out of it — never ``make_models(width, seed)`` — because the
    factories draw every lane from one RNG stream: lane ``i`` of the
    ensemble only exists as the ``i``-th draw of the full recipe.

    ``backend`` names the array backend the rebuilt batch runs on; the
    executor pins ``None`` to the parent's resolved ``REPRO_BACKEND``
    default before dispatch (see
    :func:`repro.parallel.executor.prepare_job`), so every worker
    rebuilds its shard on the same backend the parent planned with.
    """

    family: str
    n_cores: int
    seed: int = 0
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ParameterError(
                f"n_cores must be >= 1, got {self.n_cores}"
            )
        get_family(self.family)  # fail fast on unknown families
        if self.backend is not None:
            resolve_backend(self.backend)  # fail fast on unknown backends

    def build_models(self) -> list:
        return get_family(self.family).make_models(self.n_cores, self.seed)

    def build_batch(self, start: int = 0, stop: int | None = None):
        """Stack lanes ``[start, stop)`` of the recipe's ensemble, on
        the recipe's backend (``None``: the environment default)."""
        stop = self.n_cores if stop is None else stop
        check_lane_range(start, stop, self.n_cores)
        batch = get_family(self.family).stack(self.build_models()[start:stop])
        if hasattr(batch, "use_backend"):
            batch.use_backend(resolve_backend(self.backend))
        return batch


@dataclass(frozen=True, eq=False)
class DriveSpec:
    """One drive, by scenario name or as explicit driver samples.

    Exactly one of ``scenario`` / ``samples`` is set.  A scenario drive
    carries the *resolved* ``driver_step`` (the executor resolves the
    model hint before sharding — a shard's own hint could differ, which
    would silently break bitwise equality).  Scenario samples are built
    at the full ensemble width and column-sliced per shard, so per-core
    scenarios see the same lane geometry as a single-process run.

    Equality is array-aware (the dataclass-generated ``__eq__`` would
    crash on the ndarray field); specs are not hashable.
    """

    scenario: str | None = None
    h_max: float | None = None
    driver_step: float | None = None
    samples: np.ndarray | None = None

    __hash__ = None

    def __eq__(self, other) -> bool:
        if not isinstance(other, DriveSpec):
            return NotImplemented
        if (self.samples is None) != (other.samples is None):
            return False
        return (
            self.scenario == other.scenario
            and self.h_max == other.h_max
            and self.driver_step == other.driver_step
            and (
                self.samples is None
                or np.array_equal(self.samples, other.samples)
            )
        )

    def __post_init__(self) -> None:
        if (self.scenario is None) == (self.samples is None):
            raise ParameterError(
                "a DriveSpec needs exactly one of scenario / samples"
            )
        if self.scenario is not None:
            if self.h_max is None or self.driver_step is None:
                raise ScenarioError(
                    f"scenario drive {self.scenario!r} needs h_max and a "
                    "resolved driver_step"
                )
        else:
            arr = np.asarray(self.samples, dtype=float)
            if arr.ndim not in (1, 2) or len(arr) == 0:
                raise ParameterError(
                    "samples must be a non-empty 1-D or (samples, cores) "
                    f"array, got shape {arr.shape}"
                )
            object.__setattr__(self, "samples", arr)

    def full_samples(self, n_cores: int) -> np.ndarray:
        """The drive at full ensemble width (1-D when shared)."""
        if self.samples is not None:
            if self.samples.ndim == 2 and self.samples.shape[1] != n_cores:
                raise ParameterError(
                    f"per-core samples need {n_cores} columns, "
                    f"got {self.samples.shape[1]}"
                )
            return self.samples
        from repro.scenarios import get_scenario

        scenario = get_scenario(self.scenario)
        return scenario.samples(
            self.h_max, self.driver_step, n_cores=n_cores
        )

    def shard_samples(self, n_cores: int, start: int, stop: int) -> np.ndarray:
        """The columns a shard over lanes ``[start, stop)`` consumes."""
        full = self.full_samples(n_cores)
        if full.ndim == 1:
            return full
        return full[:, start:stop]


@dataclass(frozen=True, eq=False)
class ShardSpec:
    """One worker's task: rebuild lanes ``[start, stop)`` and drive them.

    The sub-ensemble comes from exactly one of two routes:

    ``payload``
        A pre-sliced engine construction dict (the engines'
        ``shard_payload``), rebuilt through the family registry's
        ``batch_from_payload`` hook — the cheap route when the parent
        already holds a live batch.
    ``ensemble``
        A registry :class:`EnsembleSpec`; the worker rebuilds the full
        recipe and slices its range — the route when only the recipe
        exists.

    Either route carries the parent's array-backend name — inside the
    payload dict (the engines ship ``backend`` in ``shard_payload``) or
    on the :class:`EnsembleSpec` — so workers rebuild their shard on
    the same backend regardless of their own ``REPRO_BACKEND``
    environment.

    Explicit-sample drives carried by a ShardSpec are **shard-local**:
    the executor pre-slices per-core matrices to this shard's columns
    before dispatch, so workers never unpickle the full-width drive.
    Shared (1-D) scenario drives stay name-sized and are rebuilt
    worker-side.

    ``threads`` is the lane-thread count this shard pins while it runs
    (see :mod:`repro.backend.threads`): the executing process wraps the
    run in ``thread_limit(threads)``, so the thread choice travels with
    the task instead of leaking ambient state across the fork.  The
    planner only emits ``threads > 1`` on single-shard serial plans;
    pooled shards always carry 1.

    ``chunk_lanes`` selects bounded-memory execution: the executing
    process streams the shard's result as contiguous lane blocks at
    most this wide (:mod:`repro.parallel.blocks`) instead of
    materialising the whole ``(samples, width)`` buffer at once.
    ``None`` (default) keeps the one-shot path.  Chunking travels with
    the spec — like ``threads`` — so local pools and remote
    :mod:`repro.dist` workers honour the same bound.

    ShardSpecs compare by identity (``eq=False``): payloads hold
    ndarrays and engine configuration objects, for which a generated
    field-wise ``__eq__`` would be ill-defined — compare the scalar
    fields (and :class:`DriveSpec`, which is array-aware) explicitly
    if needed.
    """

    family: str
    n_cores_total: int
    start: int
    stop: int
    drive: DriveSpec
    ensemble: EnsembleSpec | None = None
    payload: dict | None = None
    threads: int = 1
    chunk_lanes: int | None = None

    def __post_init__(self) -> None:
        if (self.ensemble is None) == (self.payload is None):
            raise ParameterError(
                "a ShardSpec needs exactly one of ensemble / payload"
            )
        if self.threads < 1:
            raise ParameterError(
                f"shard threads must be >= 1, got {self.threads}"
            )
        if self.chunk_lanes is not None and self.chunk_lanes < 1:
            raise ParameterError(
                f"shard chunk_lanes must be >= 1, got {self.chunk_lanes}"
            )
        check_lane_range(self.start, self.stop, self.n_cores_total)

    @property
    def width(self) -> int:
        return self.stop - self.start

    def build_batch(self):
        """Reconstruct this shard's sub-ensemble (freshly reset)."""
        if self.payload is not None:
            rebuild = get_family(self.family).batch_from_payload
            if rebuild is None:
                raise ParameterError(
                    f"family {self.family!r} registers no batch_from_payload "
                    "hook; use the EnsembleSpec route"
                )
            return rebuild(self.payload)
        return self.ensemble.build_batch(self.start, self.stop)

    def build_samples(self) -> np.ndarray:
        if self.drive.samples is not None:
            samples = self.drive.samples
            if samples.ndim == 2 and samples.shape[1] != self.width:
                raise ParameterError(
                    f"explicit samples in a ShardSpec are shard-local: "
                    f"expected {self.width} columns for lanes "
                    f"[{self.start}, {self.stop}), got {samples.shape[1]}"
                )
            return samples
        return self.drive.shard_samples(
            self.n_cores_total, self.start, self.stop
        )
