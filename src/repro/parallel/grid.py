"""Sharded scenario grids: families × scenarios × amplitudes, one pool.

:func:`run_scenario_grid` is the high-level entry for sweep campaigns
(the MagNet-Challenge shape: many materials, many drives, many
amplitudes).  Every grid cell — one ``(family, scenario, h_max)``
combination over an ``n_cores`` registry ensemble — is itself sharded,
and **all** cells' shard tasks funnel through one shared worker pool,
chunked so only a bounded number of cells hold shared-memory buffers
at a time.  Each cell's result is bitwise identical to running that
cell alone through :func:`repro.batch.sweep.run_batch_series`.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import get_context
from typing import Sequence

from repro.backend import resolve_backend
from repro.batch.sweep import BatchSweepResult
from repro.errors import ParameterError
from repro.parallel.executor import (
    execute_jobs_pooled,
    prepare_job,
    resolve_workers,
    run_job_serial,
)
from repro.parallel.spec import DriveSpec, EnsembleSpec


@dataclass(frozen=True)
class GridCell:
    """One completed grid cell."""

    family: str
    scenario: str
    h_max: float
    result: BatchSweepResult

    @property
    def key(self) -> tuple[str, str, float]:
        return (self.family, self.scenario, self.h_max)


def _plan_cells(
    families: Sequence[str],
    scenarios: Sequence[str],
    h_max_values: Sequence[float],
    n_cores: int,
    seed: int,
    driver_step: float | None,
    backend_name: str,
) -> list[tuple[tuple[str, str, float], object, DriveSpec]]:
    """Lightweight ``(key, source, drive)`` descriptor per grid cell.

    Only the driver-step hints are resolved eagerly (one per family —
    the same full-recipe resolution ``run_sharded`` performs); when a
    family's ensemble had to be built for its hint, it becomes that
    family's shard source directly, so neither the parent nor the
    workers construct it again.  The heavyweight per-cell work — full
    sample matrices, shared buffers — happens lazily, chunk by chunk.

    Every cell's spec is stamped with ``backend_name`` — the backend
    :func:`run_scenario_grid` resolved once at entry — so cells
    prepared later in the campaign cannot re-read a changed
    ``REPRO_BACKEND`` environment and split one grid across backends.
    """
    cells = []
    for family in families:
        spec = EnsembleSpec(
            family=family, n_cores=n_cores, seed=seed, backend=backend_name
        )
        source: object = spec
        step = driver_step
        if step is None:
            source = spec.build_batch()
            step = source.driver_step_hint()
        for scenario in scenarios:
            for h_max in h_max_values:
                drive = DriveSpec(
                    scenario=scenario,
                    h_max=float(h_max),
                    driver_step=float(step),
                )
                cells.append(((family, scenario, float(h_max)), source, drive))
    return cells


def run_scenario_grid(
    families: Sequence[str],
    scenarios: Sequence[str],
    h_max_values: Sequence[float],
    n_cores: int,
    *,
    seed: int = 0,
    driver_step: float | None = None,
    backend: str | None = None,
    n_workers: int | None = None,
    min_shard: int = 1,
    chunk_cells: int = 8,
    mp_context: str | None = None,
    plan=None,
) -> list[GridCell]:
    """Run the full grid, sharded, through one worker pool.

    Parameters mirror :func:`repro.parallel.executor.run_sharded`;
    ``driver_step=None`` resolves one hint per family from its full
    registry ensemble (which is then sharded directly rather than
    rebuilt).  ``backend`` selects the array backend for every cell
    (``None``: the ``REPRO_BACKEND`` environment default) — resolved
    **once here at grid entry** and stamped into every cell's
    :class:`~repro.parallel.spec.EnsembleSpec`, so a mid-campaign
    environment change cannot split one grid across backends (cells
    are prepared lazily, chunk by chunk, long after this call starts).
    ``chunk_cells`` bounds how many cells hold live sample matrices
    and shared-memory buffers at once — large grids stream through the
    pool chunk by chunk instead of materialising every cell up front.

    ``plan`` applies one calibrated execution plan to the whole grid
    (the one-campaign / one-configuration invariant above is why a grid
    takes a single plan, not one per cell): ``"auto"`` picks the shape
    minimising the summed predicted cost across every cell
    (:func:`repro.sched.planner.plan_grid`); an explicit
    :class:`~repro.sched.planner.ExecutionPlan` applies verbatim.  A
    plan owns the backend and pool-width axes, so it is mutually
    exclusive with ``backend`` / ``n_workers``, and it is clamped to
    this host exactly as in :func:`~repro.parallel.executor.run_sharded`.

    Returns one :class:`GridCell` per combination, in
    ``families × scenarios × h_max_values`` order.
    """
    if not (families and scenarios and h_max_values):
        raise ParameterError(
            "run_scenario_grid needs at least one family, scenario and h_max"
        )
    if chunk_cells < 1:
        raise ParameterError(f"chunk_cells must be >= 1, got {chunk_cells}")
    threads = 1
    if plan is not None:
        if backend is not None or n_workers is not None:
            raise ParameterError(
                "pass either plan= or explicit backend=/n_workers=, not "
                "both: a plan owns those axes"
            )
        from repro.parallel.executor import available_cpus
        from repro.sched.planner import ExecutionPlan
        from repro.sched.planner import plan_grid as _plan_grid

        if isinstance(plan, ExecutionPlan):
            chosen = plan
        elif plan == "auto":
            # Workload cells for the planner: each cell's drive length,
            # estimated from a single-lane build of its scenario (row
            # counts depend on h_max and driver_step, not on the lane
            # count — planning never pays for full-width matrices).
            probe = _plan_cells(
                families, scenarios, h_max_values, n_cores, seed,
                driver_step, resolve_backend(None).name,
            )
            workloads = [
                (family, n_cores, len(drive.full_samples(1)))
                for (family, _, _), _, drive in probe
            ]
            chosen = _plan_grid(workloads, min_shard=min_shard)
        else:
            raise ParameterError(
                f"plan must be an ExecutionPlan or 'auto', got {plan!r}"
            )
        workers = resolve_workers(chosen.n_workers)
        threads = max(
            1, min(chosen.threads_per_worker, available_cpus() // workers)
        )
        backend_name = resolve_backend(chosen.backend).name
    else:
        workers = resolve_workers(n_workers)
        backend_name = resolve_backend(backend).name
    planned = _plan_cells(
        families, scenarios, h_max_values, n_cores, seed, driver_step,
        backend_name,
    )

    cells: list[GridCell] = []
    if workers == 1:
        for (family, scenario, h_max), source, drive in planned:
            job = prepare_job(source, drive, workers, min_shard, threads)
            cells.append(
                GridCell(family, scenario, h_max, run_job_serial(job))
            )
        return cells

    ctx = get_context(mp_context)
    with ctx.Pool(processes=workers) as pool:
        for offset in range(0, len(planned), chunk_cells):
            chunk = planned[offset : offset + chunk_cells]
            jobs = [
                prepare_job(source, drive, workers, min_shard, threads)
                for _, source, drive in chunk
            ]
            results = execute_jobs_pooled(pool, jobs)
            cells.extend(
                GridCell(family, scenario, h_max, result)
                for ((family, scenario, h_max), _, _), result in zip(
                    chunk, results
                )
            )
    return cells
