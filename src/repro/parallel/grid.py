"""Sharded scenario grids: families × scenarios × amplitudes, one pool.

:func:`run_scenario_grid` is the high-level entry for sweep campaigns
(the MagNet-Challenge shape: many materials, many drives, many
amplitudes).  Every grid cell — one ``(family, scenario, h_max)``
combination over an ``n_cores`` registry ensemble — is itself sharded,
and **all** cells' shard tasks funnel through one shared worker pool,
chunked so only a bounded number of cells hold shared-memory buffers
at a time.  Each cell's result is bitwise identical to running that
cell alone through :func:`repro.batch.sweep.run_batch_series`.

Grids **dedupe** before computing: callers composing ``h_max_values``
from overlapping sources (a default ladder plus a spot-check list)
historically paid for every duplicate combination; now each unique
``(family, scenario, h_max)`` cell is computed once and duplicates are
served the same result object (the collapse is logged).

A grid can also run through a :class:`~repro.service.api.HysteresisService`
via ``service=``: unique cells are first looked up in the service's
content-addressed cache, only the misses are planned and computed (on
the service's persistent warm pool), and fresh results are inserted so
the next campaign starts warm.  The service deliberately stays
duck-typed here — :mod:`repro.parallel.grid` never imports
:mod:`repro.service`, which sits *above* it in the layer stack.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Sequence

from repro.backend import resolve_backend
from repro.batch.sweep import BatchSweepResult
from repro.errors import ParameterError
from repro.parallel.executor import (
    execute_jobs_pooled,
    prepare_job,
    resolve_workers,
    run_job_serial,
)
from repro.parallel.spec import DriveSpec, EnsembleSpec

_log = logging.getLogger(__name__)


@dataclass(frozen=True)
class GridCell:
    """One completed grid cell."""

    family: str
    scenario: str
    h_max: float
    result: BatchSweepResult

    @property
    def key(self) -> tuple[str, str, float]:
        return (self.family, self.scenario, self.h_max)


def _plan_cells(
    families: Sequence[str],
    scenarios: Sequence[str],
    h_max_values: Sequence[float],
    n_cores: int,
    seed: int,
    driver_step: float | None,
    backend_name: str,
) -> list[tuple[tuple[str, str, float], EnsembleSpec, object, DriveSpec]]:
    """Lightweight ``(key, spec, source, drive)`` descriptor per cell.

    Only the driver-step hints are resolved eagerly (one per family —
    the same full-recipe resolution ``run_sharded`` performs); when a
    family's ensemble had to be built for its hint, it becomes that
    family's shard source directly, so neither the parent nor the
    workers construct it again.  The heavyweight per-cell work — full
    sample matrices, shared buffers — happens lazily, chunk by chunk.
    The spec rides along even when a built batch is the source: it is
    the stable recipe the service layer digests for cache keys.

    Every cell's spec is stamped with ``backend_name`` — the backend
    :func:`run_scenario_grid` resolved once at entry — so cells
    prepared later in the campaign cannot re-read a changed
    ``REPRO_BACKEND`` environment and split one grid across backends.
    """
    cells = []
    for family in families:
        spec = EnsembleSpec(
            family=family, n_cores=n_cores, seed=seed, backend=backend_name
        )
        source: object = spec
        step = driver_step
        if step is None:
            source = spec.build_batch()
            step = source.driver_step_hint()
        for scenario in scenarios:
            for h_max in h_max_values:
                drive = DriveSpec(
                    scenario=scenario,
                    h_max=float(h_max),
                    driver_step=float(step),
                )
                cells.append(
                    ((family, scenario, float(h_max)), spec, source, drive)
                )
    return cells


def _dedupe_cells(planned):
    """Collapse duplicate cell keys, preserving first-seen order.

    Returns ``(unique, order)`` where ``unique`` maps each key to its
    ``(spec, source, drive)`` descriptor and ``order`` is the original
    key sequence (duplicates included) for final result assembly.
    """
    unique: dict = {}
    order = []
    for key, spec, source, drive in planned:
        if key not in unique:
            unique[key] = (spec, source, drive)
        order.append(key)
    collapsed = len(order) - len(unique)
    if collapsed:
        _log.info(
            "run_scenario_grid collapsed %d duplicate cell(s): computing "
            "%d unique of %d requested",
            collapsed,
            len(unique),
            len(order),
        )
    return unique, order


def run_scenario_grid(
    families: Sequence[str],
    scenarios: Sequence[str],
    h_max_values: Sequence[float],
    n_cores: int,
    *,
    seed: int = 0,
    driver_step: float | None = None,
    backend: str | None = None,
    n_workers: int | None = None,
    min_shard: int = 1,
    chunk_cells: int = 8,
    mp_context: str | None = None,
    plan=None,
    service=None,
    chunk_lanes: int | None = None,
    hosts=None,
) -> list[GridCell]:
    """Run the full grid, sharded, through one worker pool.

    Parameters mirror :func:`repro.parallel.executor.run_sharded`;
    ``driver_step=None`` resolves one hint per family from its full
    registry ensemble (which is then sharded directly rather than
    rebuilt).  ``backend`` selects the array backend for every cell
    (``None``: the ``REPRO_BACKEND`` environment default) — resolved
    **once here at grid entry** and stamped into every cell's
    :class:`~repro.parallel.spec.EnsembleSpec`, so a mid-campaign
    environment change cannot split one grid across backends (cells
    are prepared lazily, chunk by chunk, long after this call starts).
    ``chunk_cells`` bounds how many cells hold live sample matrices
    and shared-memory buffers at once — large grids stream through the
    pool chunk by chunk instead of materialising every cell up front.

    Duplicate ``(family, scenario, h_max)`` combinations are collapsed
    before planning: each unique cell is computed once and every
    duplicate position in the returned list carries the same result.

    ``plan`` applies one calibrated execution plan to the whole grid
    (the one-campaign / one-configuration invariant above is why a grid
    takes a single plan, not one per cell): ``"auto"`` picks the shape
    minimising the summed predicted cost across every cell
    (:func:`repro.sched.planner.plan_grid`); an explicit
    :class:`~repro.sched.planner.ExecutionPlan` applies verbatim.  A
    plan owns the backend and pool-width axes, so it is mutually
    exclusive with ``backend`` / ``n_workers``, and it is clamped to
    this host exactly as in :func:`~repro.parallel.executor.run_sharded`.

    ``service`` routes the grid through a live
    :class:`~repro.service.api.HysteresisService`: unique cells are
    looked up in its content-addressed cache first, **only the misses**
    are planned (spin-up-free — the service's pool is already warm) and
    computed on the service's persistent pool, and fresh results are
    cached for the next campaign.  The service owns the pool, so
    ``n_workers`` / ``mp_context`` are mutually exclusive with it; and
    because the backend is part of the cache key (numpy's bitwise tier
    and numba's rtol tier must never cross-serve), ``plan="auto"``
    under a service prices only the width/thread axes — the backend
    pins to ``backend`` (or the environment default) before lookup.

    ``chunk_lanes`` streams every cell's shards in bounded lane blocks
    (:mod:`repro.parallel.blocks`) — bitwise-neutral, memory-bounded.
    ``hosts`` dispatches the whole campaign across ``"host:port"``
    :mod:`repro.dist` worker agents instead of a local pool: unique
    cells flow through one shared dispatcher (its digest-keyed dedup
    table spans the campaign), ``n_workers`` names the per-cell shard
    count (default: one per host), and an unreachable fleet degrades
    to the local serial executor with a logged warning.

    Returns one :class:`GridCell` per combination, in
    ``families × scenarios × h_max_values`` order.
    """
    if not (families and scenarios and h_max_values):
        raise ParameterError(
            "run_scenario_grid needs at least one family, scenario and h_max"
        )
    if chunk_cells < 1:
        raise ParameterError(f"chunk_cells must be >= 1, got {chunk_cells}")
    if hosts is not None:
        if service is not None:
            raise ParameterError(
                "pass either hosts= or service=, not both: a remote fleet "
                "and a local service pool cannot share one campaign"
            )
        if mp_context is not None:
            raise ParameterError(
                "mp_context applies to the local one-shot pool; repro.dist "
                "workers already run in their own processes"
            )
        if plan is not None:
            raise ParameterError(
                "pass either hosts= or plan=, not both: multi-host "
                "placement plans route through run_sharded(plan=...)"
            )
        return _run_grid_distributed(
            families, scenarios, h_max_values, n_cores, seed, driver_step,
            backend, n_workers, min_shard, chunk_cells, chunk_lanes, hosts,
        )
    if service is not None:
        if n_workers is not None:
            raise ParameterError(
                "pass either service= or n_workers=, not both: the "
                "service's pool owns the pool width"
            )
        if mp_context is not None:
            raise ParameterError(
                "mp_context applies to the one-shot pool the grid creates; "
                "a service's pool already carries its start method"
            )
        return _run_grid_service(
            families, scenarios, h_max_values, n_cores, seed, driver_step,
            backend, min_shard, chunk_cells, plan, service, chunk_lanes,
        )
    threads = 1
    if plan is not None:
        if backend is not None or n_workers is not None:
            raise ParameterError(
                "pass either plan= or explicit backend=/n_workers=, not "
                "both: a plan owns those axes"
            )
        from repro.parallel.executor import available_cpus
        from repro.sched.planner import ExecutionPlan
        from repro.sched.planner import plan_grid as _plan_grid

        if isinstance(plan, ExecutionPlan):
            chosen = plan
        elif plan == "auto":
            # Workload cells for the planner: each cell's drive length,
            # estimated from a single-lane build of its scenario (row
            # counts depend on h_max and driver_step, not on the lane
            # count — planning never pays for full-width matrices).
            probe = _plan_cells(
                families, scenarios, h_max_values, n_cores, seed,
                driver_step, resolve_backend(None).name,
            )
            unique_probe, _ = _dedupe_cells(probe)
            workloads = [
                (key[0], n_cores, len(drive.full_samples(1)))
                for key, (_, _, drive) in unique_probe.items()
            ]
            chosen = _plan_grid(workloads, min_shard=min_shard)
        else:
            raise ParameterError(
                f"plan must be an ExecutionPlan or 'auto', got {plan!r}"
            )
        workers = resolve_workers(chosen.n_workers)
        threads = max(
            1, min(chosen.threads_per_worker, available_cpus() // workers)
        )
        backend_name = resolve_backend(chosen.backend).name
    else:
        workers = resolve_workers(n_workers)
        backend_name = resolve_backend(backend).name
    planned = _plan_cells(
        families, scenarios, h_max_values, n_cores, seed, driver_step,
        backend_name,
    )
    unique, order = _dedupe_cells(planned)

    results: dict = {}
    todo = list(unique.items())
    if workers == 1:
        for key, (_, source, drive) in todo:
            job = prepare_job(
                source, drive, workers, min_shard, threads,
                chunk_lanes=chunk_lanes,
            )
            results[key] = run_job_serial(job)
    else:
        ctx = get_context(mp_context)
        with ctx.Pool(processes=workers) as pool:
            for offset in range(0, len(todo), chunk_cells):
                chunk = todo[offset : offset + chunk_cells]
                jobs = [
                    prepare_job(
                        source, drive, workers, min_shard, threads,
                        chunk_lanes=chunk_lanes,
                    )
                    for _, (_, source, drive) in chunk
                ]
                for (key, _), result in zip(
                    chunk, execute_jobs_pooled(pool, jobs)
                ):
                    results[key] = result
    return [GridCell(*key, results[key]) for key in order]


def _run_grid_distributed(
    families,
    scenarios,
    h_max_values,
    n_cores,
    seed,
    driver_step,
    backend,
    n_workers,
    min_shard,
    chunk_cells,
    chunk_lanes,
    hosts,
):
    """The ``hosts=`` route: every unique cell through one shared
    :class:`~repro.dist.dispatch.Dispatcher`, chunked like the local
    pooled path so only ``chunk_cells`` cells hold output buffers at a
    time.  An unreachable fleet degrades to the local serial executor
    with a logged warning — the campaign always completes."""
    # Lazy upward import: repro.dist sits above this package in the
    # layer stack, and host-less grids never pay for (or depend on) it.
    from repro.dist.dispatch import Dispatcher

    backend_name = resolve_backend(backend).name
    planned = _plan_cells(
        families, scenarios, h_max_values, n_cores, seed, driver_step,
        backend_name,
    )
    unique, order = _dedupe_cells(planned)
    n_shards = len(hosts) if n_workers is None else n_workers

    def make_job(source, drive):
        return prepare_job(
            source, drive, n_shards, min_shard, chunk_lanes=chunk_lanes
        )

    results: dict = {}
    todo = list(unique.items())
    with Dispatcher(hosts) as dispatcher:
        if dispatcher.n_live == 0:
            _log.warning(
                "no repro.dist worker reachable at %s; running the grid "
                "on the local executor", ", ".join(hosts),
            )
            for key, (_, source, drive) in todo:
                results[key] = run_job_serial(make_job(source, drive))
        else:
            for offset in range(0, len(todo), chunk_cells):
                chunk = todo[offset : offset + chunk_cells]
                jobs = [
                    make_job(source, drive)
                    for _, (_, source, drive) in chunk
                ]
                for (key, _), result in zip(
                    chunk, dispatcher.run_jobs(jobs)
                ):
                    results[key] = result
    return [GridCell(*key, results[key]) for key in order]


def _run_grid_service(
    families,
    scenarios,
    h_max_values,
    n_cores,
    seed,
    driver_step,
    backend,
    min_shard,
    chunk_cells,
    plan,
    service,
    chunk_lanes=None,
):
    """The ``service=`` route: cache lookups, then misses on the warm
    pool.  The backend is resolved *before* planning — it is part of
    every cache key, so the planner may only choose width/threads."""
    backend_name = resolve_backend(backend).name
    planned = _plan_cells(
        families, scenarios, h_max_values, n_cores, seed, driver_step,
        backend_name,
    )
    unique, order = _dedupe_cells(planned)

    results: dict = {}
    pending = []
    for key, (spec, source, drive) in unique.items():
        digest = service.digest_for(spec, drive)
        hit = service.cache.get(digest)
        if hit is not None:
            results[key] = hit
        else:
            pending.append((key, digest, source, drive))
    if len(unique) - len(pending):
        _log.info(
            "run_scenario_grid served %d of %d unique cell(s) from cache",
            len(unique) - len(pending),
            len(unique),
        )

    threads = 1
    workers = service.pool.n_workers
    if plan is not None and pending:
        if backend is not None and plan != "auto":
            raise ParameterError(
                "pass either plan= or backend=, not both: an explicit "
                "plan owns the backend axis"
            )
        from repro.parallel.executor import available_cpus
        from repro.sched.planner import ExecutionPlan
        from repro.sched.planner import plan_grid as _plan_grid

        if isinstance(plan, ExecutionPlan):
            if resolve_backend(plan.backend).name != backend_name:
                raise ParameterError(
                    "a cached grid's backend is part of its cache keys: "
                    f"plan backend {plan.backend!r} conflicts with the "
                    f"grid backend {backend_name!r}"
                )
            chosen = plan
        elif plan == "auto":
            workloads = [
                (key[0], n_cores, len(drive.full_samples(1)))
                for key, _, _, drive in pending
            ]
            chosen = _plan_grid(
                workloads,
                min_shard=min_shard,
                warm_pool=True,
                backend=backend_name,
            )
        else:
            raise ParameterError(
                f"plan must be an ExecutionPlan or 'auto', got {plan!r}"
            )
        workers = min(resolve_workers(chosen.n_workers), workers)
        threads = max(
            1, min(chosen.threads_per_worker, available_cpus() // workers)
        )

    for offset in range(0, len(pending), chunk_cells):
        chunk = pending[offset : offset + chunk_cells]
        jobs = [
            prepare_job(
                source, drive, workers, min_shard, threads,
                chunk_lanes=chunk_lanes,
            )
            for _, _, source, drive in chunk
        ]
        for (key, digest, _, _), result in zip(
            chunk, service.pool.execute(jobs)
        ):
            # Hand the *frozen* cache entry onward so duplicates and
            # later campaigns all see the same read-only arrays.
            results[key] = service.cache.put(digest, result)
    return [GridCell(*key, results[key]) for key in order]
