"""EXP-A1: ablation of the two turning-point guards.

The published ``Integral`` process applies two guards (DESIGN.md §1).
This ablation runs the Figure 1 workload with each combination and
counts the pathologies each guard suppresses.  Measured outcome:

* with both guards off, the raw negative slopes retrace B by ~0.2 T
  at every reversal (the non-physical artefact);
* **either guard alone is sufficient and they are equivalent in this
  scheme**: a negative ``dmdh`` always produces an increment opposing
  the field direction (``dm*dh = dh**2 * dmdh < 0``), so guard 2 drops
  exactly the increments guard 1 would have clamped — the trajectories
  coincide to the last bit, only the counter that fires differs;
* with guard 1 active guard 2 never fires (``dm*dh >= 0`` already).

The redundancy in the published listing is therefore defensive
belt-and-braces, not two distinct mechanisms.
"""

from __future__ import annotations

from repro.analysis.loops import extract_loops
from repro.analysis.metrics import loop_metrics
from repro.analysis.stability import audit_trajectory
from repro.batch.sweep import sweep as batch_sweep
from repro.constants import DEFAULT_DHMAX, FIG1_H_MAX
from repro.core.slope import SlopeGuards
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.ja.parameters import PAPER_PARAMETERS
from repro.waveforms.sweeps import fig1_waypoints


@register("EXP-A1", "Ablation: turning-point guards of the Integral process")
def run(
    dhmax: float = DEFAULT_DHMAX, h_max: float = FIG1_H_MAX
) -> ExperimentResult:
    waypoints = fig1_waypoints(h_max=h_max)
    combinations = [
        ("both guards (paper)", SlopeGuards(True, True)),
        ("clamp only", SlopeGuards(True, False)),
        ("drop only", SlopeGuards(False, True)),
        ("no guards", SlopeGuards(False, False)),
    ]
    table = TextTable(
        [
            "guards",
            "B-retrace depth [T]",
            "clamped",
            "dropped",
            "finite",
            "acceptable",
            "Hc [A/m]",
            "Br [T]",
        ],
        title=f"Figure 1 workload, dhmax={dhmax} A/m",
    )
    # All four guard combinations run as one ensemble: same material and
    # dhmax, per-core guard flags, one lockstep sweep instead of four
    # scalar runs (each lane bitwise identical to its scalar run).
    ensemble = batch_sweep(
        [PAPER_PARAMETERS] * len(combinations),
        waypoints,
        dhmax=dhmax,
        driver_step=dhmax / 4.0,
        guards=[guards for _, guards in combinations],
    )
    data: dict[str, object] = {}
    for lane, (name, _) in enumerate(combinations):
        sweep = ensemble.core(lane)
        audit = audit_trajectory(sweep.h, sweep.b)
        if sweep.finite:
            major = extract_loops(sweep.h, sweep.b)[0]
            metrics = loop_metrics(major.h, major.b)
            hc, br = metrics.coercivity, metrics.remanence
        else:
            hc, br = float("nan"), float("nan")
        table.add_row(
            name,
            audit.monotonicity_depth,
            sweep.clamped_slopes,
            sweep.dropped_increments,
            sweep.finite,
            audit.acceptable(),
            hc,
            br,
        )
        data[name] = {"sweep": sweep, "audit": audit}

    result = ExperimentResult(
        experiment_id="EXP-A1",
        title="Ablation: turning-point guards of the Integral process",
    )
    result.tables = [table]
    result.notes = [
        "guard 1 = clamp negative slopes; guard 2 = drop increments "
        "opposing the field direction (published order: 1 then 2)",
        "with guard 1 active guard 2 never fires (dm*dh = dh^2*dmdh >= 0)",
    ]
    result.data = data
    return result
