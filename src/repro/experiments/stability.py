"""EXP-T2: stability at slope discontinuities — timeless vs time-based.

Drives one major loop through four formulations:

* **timeless** (the paper): Forward Euler in H with guards;
* **integ-ams**: the VHDL-AMS ``'INTEG`` architecture solved by the
  analogue engine (implicit, adaptive) — the formulation of the
  paper's refs [4, 5];
* **time-fe** / **time-rk4**: explicit fixed-step integration of
  dM/dt = (dM/dH)(dH/dt) without guards — the naive SPICE-style chain.

For each, counts: completion, negative-slope samples in the output,
negative-slope *evaluations* inside the solver, Newton failures and
step-floor hits (AMS only), divergence.  The paper's claim is the first
row is clean and the others are not.
"""

from __future__ import annotations

from repro.analysis.stability import audit_trajectory
from repro.baselines.time_domain import TimeDomainJAModel
from repro.batch.engine import BatchTimelessModel
from repro.batch.sweep import run_batch_series
from repro.constants import DEFAULT_DHMAX, FIG1_H_MAX
from repro.core.slope import SlopeGuards
from repro.experiments.registry import ExperimentResult, register
from repro.hdl.vhdlams import IntegJAArchitecture, SolverOptions, TransientSolver
from repro.io.table import TextTable
from repro.ja.parameters import PAPER_PARAMETERS
from repro.scenarios import get_scenario
from repro.solver.integrators import IntegrationMethod
from repro.waveforms import TriangularWave


@register("EXP-T2", "Numerical stability at turning points across formulations")
def run(
    dhmax: float = DEFAULT_DHMAX,
    h_max: float = FIG1_H_MAX,
    period: float = 10e-3,
    time_steps_per_period: int = 400,
) -> ExperimentResult:
    wave = TriangularWave(h_max, period)
    t_stop = 1.25 * period
    dt_fixed = period / time_steps_per_period
    rows = []
    data: dict[str, object] = {}

    # -- timeless -----------------------------------------------------------
    # Routed through the scenario registry and the model-agnostic batch
    # executor (one-core ensemble): bitwise identical to the scalar
    # run_sweep this replaces, by the batch engine's defining property.
    samples = get_scenario("major-loop").samples(h_max, driver_step=dhmax / 4.0)
    batch = BatchTimelessModel([PAPER_PARAMETERS], dhmax=dhmax)
    sweep = run_batch_series(batch, samples).core(0)
    audit = audit_trajectory(sweep.h, sweep.b)
    rows.append(
        (
            "timeless (paper)",
            True,
            audit.monotonicity_depth,
            0,  # guarded slope never hands a negative value onward
            0,
            0,
            audit.acceptable(),
        )
    )
    data["timeless"] = {"sweep": sweep, "audit": audit}

    # -- VHDL-AMS 'INTEG ------------------------------------------------------
    arch = IntegJAArchitecture(PAPER_PARAMETERS, wave)
    solver = TransientSolver(
        arch.system, SolverOptions(dt_initial=1e-6, dt_max=period / 200.0)
    )
    transient = solver.run(t_stop=t_stop)
    h_ams = transient.of(arch.q_h)
    b_ams = transient.of(arch.q_b)
    audit_ams = audit_trajectory(h_ams, b_ams)
    completed = not transient.report.gave_up
    rows.append(
        (
            "'INTEG on analogue solver",
            completed,
            audit_ams.monotonicity_depth,
            arch.negative_slope_evaluations,
            transient.report.newton_failures,
            transient.report.floor_hits,
            audit_ams.acceptable() and completed,
        )
    )
    data["integ_ams"] = {
        "report": transient.report,
        "audit": audit_ams,
        "negative_slope_evaluations": arch.negative_slope_evaluations,
    }

    # -- explicit time-domain chains -----------------------------------------
    for label, method in (
        ("dM/dt forward Euler", IntegrationMethod.FORWARD_EULER),
        ("dM/dt RK4", IntegrationMethod.RK4),
    ):
        baseline = TimeDomainJAModel(PAPER_PARAMETERS, guards=SlopeGuards.none())
        run_result = baseline.run(wave, t_stop=t_stop, dt=dt_fixed, method=method)
        audit_td = audit_trajectory(run_result.h, run_result.b)
        rows.append(
            (
                label,
                run_result.completed,
                audit_td.monotonicity_depth,
                run_result.negative_slope_evaluations,
                0,
                0,
                audit_td.acceptable() and run_result.completed,
            )
        )
        data[f"time_domain_{method.value}"] = {
            "result": run_result,
            "audit": audit_td,
        }

    table = TextTable(
        [
            "formulation",
            "completed",
            "B-retrace depth [T]",
            "neg-slope evals",
            "newton failures",
            "floor hits",
            "acceptable",
        ],
        title=(
            f"Major loop +/-{h_max:g} A/m; dhmax={dhmax} A/m; "
            f"fixed dt={dt_fixed:.2e} s"
        ),
    )
    table.add_rows(rows)

    result = ExperimentResult(
        experiment_id="EXP-T2",
        title="Numerical stability at turning points across formulations",
    )
    result.tables = [table]
    result.notes = [
        "paper: the timeless model 'overcomes ... non-convergence and "
        "numerical instability' of solver-coupled implementations",
        "expected shape: first row clean; 'INTEG row shows Newton "
        "failures/floor hits; unguarded explicit chains count negative "
        "slope evaluations at every reversal",
    ]
    result.data = data
    return result
