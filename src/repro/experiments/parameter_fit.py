"""EXP-X3: parameter extraction — fitting JA parameters to a loop.

The workflow a user of this library actually faces: a measured B-H loop
and order-of-magnitude starting guesses.  We synthesise the
"measurement" from the paper's parameters, perturb a subset, and ask
:func:`repro.analysis.fitting.fit_ja_parameters` to recover them.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.fitting import fit_ja_parameters
from repro.core.model import TimelessJAModel
from repro.core.sweep import run_sweep
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.ja.parameters import PAPER_PARAMETERS
from repro.waveforms.sweeps import major_loop_waypoints


@register("EXP-X3", "Parameter extraction: fit JA parameters to a loop")
def run(
    h_peak: float = 10e3,
    dhmax: float = 200.0,
    vary: Sequence[str] = ("k", "c", "m_sat"),
    perturbation: float = 1.5,
    max_nfev: int = 60,
) -> ExperimentResult:
    waypoints = major_loop_waypoints(h_peak, cycles=1)
    truth_model = TimelessJAModel(PAPER_PARAMETERS, dhmax=dhmax)
    measured = run_sweep(truth_model, waypoints)

    perturbed = {name: getattr(PAPER_PARAMETERS, name) * perturbation for name in vary}
    start = PAPER_PARAMETERS.with_updates(name="perturbed", **perturbed)

    fit = fit_ja_parameters(
        measured.h,
        measured.b,
        waypoints,
        initial=start,
        vary=vary,
        dhmax=dhmax,
        max_nfev=max_nfev,
    )

    table = TextTable(
        ["parameter", "truth", "start (perturbed)", "fitted", "error [%]"],
        title=f"Recovery of {len(vary)} parameters from a synthetic loop",
    )
    recovery_errors = {}
    for name in vary:
        truth = float(getattr(PAPER_PARAMETERS, name))
        started = float(getattr(start, name))
        fitted = float(getattr(fit.params, name))
        error_pct = 100.0 * abs(fitted - truth) / truth
        recovery_errors[name] = error_pct
        table.add_row(name, truth, started, fitted, error_pct)

    quality = TextTable(["metric", "value"], title="Fit quality")
    quality.add_row("residual rms [T]", fit.residual_rms)
    quality.add_row("residual rms / B swing [%]", 100.0 * fit.relative_rms)
    quality.add_row("objective evaluations", fit.iterations)
    quality.add_row("optimiser converged", fit.converged)

    result = ExperimentResult(
        experiment_id="EXP-X3",
        title="Parameter extraction: fit JA parameters to a loop",
    )
    result.tables = [table, quality]
    result.notes = [
        f"varied parameters started {perturbation:.2f}x off their true "
        "values; everything else held at truth",
        "expected shape: all recovery errors in low single-digit "
        "percent, residual well under 1% of the B swing",
    ]
    result.data = {
        "fit": fit,
        "recovery_errors": recovery_errors,
        "vary": list(vary),
    }
    return result
