"""EXP-B5: fused × sharded composition — compiled shards across a pool.

PR 4 made every batch engine's sweep *fused* (one ``step_series`` call
per series) and PR 5 gave the numba backend a compiled driver for
**every** registered family; the sharded executor of PR 3 runs each
shard through the same fused path internally.  This experiment measures
how the two layers compose, per family × registered backend:

1. **single fused process** — ``run_batch_series`` on one core: the
   numpy row is the bitwise reference, the numba row (when registered)
   is the compiled whole-recurrence loop;
2. **sharded fused × K workers** — ``run_sharded`` over a process
   pool, every worker running the fused path of the row's backend.

The interesting question is the **crossover**: a compiled numba loop
on one core competes directly with K vectorised numpy workers — for
per-sample work light enough (the timeless map), one JIT process can
beat a small pool; for heavy relay tensors the pool wins.  The
crossover note names the winner per family at the measured geometry.

Equivalence is tiered exactly like the conformance suite: rows on the
exact numpy backend are bitwise against the reference (sharding is a
transport optimisation, fusion strips dispatch — neither moves a bit);
numba rows hold the backend's rtol with threshold-decision counters
(``euler_steps``/``switch_events``/``steps``) exact.

``benchmarks/test_bench_fused_sharded.py`` asserts the headline
(sharded fused >= 2x over single fused at N = 512 with >= 4 real
workers) and regenerates this table into ``results/EXP-B5.txt`` with
the backend and worker count stamped in the header.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.backend import list_backends
from repro.batch.sweep import run_batch_series
from repro.experiments.backend_fused import (
    bitwise_equal_lanes,
    max_relative_deviation,
)
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.models.registry import list_families
from repro.parallel import available_cpus, resolve_workers, run_sharded
from repro.scenarios import scenario_samples


def _equivalence(reference, candidate, backend, n_cores: int) -> str:
    """One equivalence cell: bitwise lane count on the exact tier, max
    relative deviation against the declared rtol on the JIT tier."""
    if backend.exact:
        return f"bitwise {bitwise_equal_lanes(reference, candidate)}/{n_cores}"
    deviation = max_relative_deviation(reference, candidate)
    within = deviation <= backend.rtol
    return (
        f"max rel dev {deviation:.2e} "
        f"({'within' if within else 'OUTSIDE'} rtol {backend.rtol:g})"
    )


@register("EXP-B5", "Fused x sharded composition: compiled shards across a pool")
def run(
    n_cores: int = 256,
    h_max: float = 10e3,
    driver_step: float = 400.0,
    n_workers: int | None = None,
    seed: int = 2006,
) -> ExperimentResult:
    workers = resolve_workers(n_workers)
    backends = list_backends()

    rows: list[dict] = []
    crossover: dict[str, dict] = {}
    samples_per_family: dict[str, int] = {}
    for family in list_families():
        # Scale the shared ladder drive to the family's amplitude while
        # keeping the sample count identical across families.
        step = family.h_scale * (driver_step / h_max)
        h = scenario_samples("minor-loop-ladder", family.h_scale, step)
        samples_per_family[family.name] = len(h)

        # The numpy reference must exist before any other backend's
        # rows are scored (list_backends() sorts alphabetically, which
        # puts "numba" first when registered), so run it up front and
        # iterate the reference backend first.  Construction stays
        # outside the timing: the first preisach make_batch pays the
        # (cached) Everett identification.
        reference_batch = family.make_batch(n_cores, seed, backend="numpy")
        start = time.perf_counter()
        reference = run_batch_series(reference_batch, h)
        base_seconds = time.perf_counter() - start

        timings: dict[tuple[str, str], float] = {}
        ordered = sorted(backends, key=lambda b: b.name != "numpy")
        for backend in ordered:
            if backend.name == "numpy":
                single, single_seconds = reference, base_seconds
            else:
                batch = family.make_batch(
                    n_cores, seed, backend=backend.name
                )
                if not backend.exact:
                    run_batch_series(batch, h)  # JIT warm-up, untimed
                start = time.perf_counter()
                single = run_batch_series(batch, h)
                single_seconds = time.perf_counter() - start
            timings[(backend.name, "single")] = single_seconds

            sharded_batch = family.make_batch(
                n_cores, seed, backend=backend.name
            )
            start = time.perf_counter()
            sharded = run_sharded(sharded_batch, h, n_workers=workers)
            sharded_seconds = time.perf_counter() - start
            timings[(backend.name, "sharded")] = sharded_seconds

            for mode, result, seconds in (
                ("single fused", single, single_seconds),
                (f"sharded fused x {workers}", sharded, sharded_seconds),
            ):
                rows.append(
                    {
                        "family": family.name,
                        "backend": backend.name,
                        "mode": mode,
                        "driver": "compiled"
                        if backend.fused_driver(family.name) is not None
                        else "vectorised xp loop",
                        "seconds": seconds,
                        "speedup": base_seconds / max(seconds, 1e-12),
                        "equivalence": _equivalence(
                            reference, result, backend, n_cores
                        ),
                        "equal_lanes": bitwise_equal_lanes(reference, result)
                        if backend.exact
                        else None,
                    }
                )

        if ("numba", "single") in timings:
            jit_single = timings[("numba", "single")]
            pool_numpy = timings[("numpy", "sharded")]
            crossover[family.name] = {
                "numba_single_seconds": jit_single,
                "numpy_sharded_seconds": pool_numpy,
                "winner": "one fused numba process"
                if jit_single <= pool_numpy
                else f"{workers} fused numpy workers",
                "ratio": pool_numpy / max(jit_single, 1e-12),
            }

    table = TextTable(
        [
            "family",
            "backend",
            "sweep path",
            "fused driver",
            "seconds",
            "speedup",
            "equivalence vs numpy single fused",
        ],
        title=(
            f"{n_cores} cores, minor-loop-ladder scaled per family, "
            f"{workers} worker(s) for the sharded rows"
        ),
    )
    for row in rows:
        table.add_row(
            row["family"],
            row["backend"],
            row["mode"],
            row["driver"],
            row["seconds"],
            f"{row['speedup']:.1f}x",
            row["equivalence"],
        )

    result = ExperimentResult(
        experiment_id="EXP-B5",
        title="Fused x sharded composition: compiled shards across a pool",
    )
    result.tables = [table]
    result.notes = [
        f"workers: {workers} (host exposes {available_cpus()} CPU(s); "
        "REPRO_PARALLEL_MAX_WORKERS caps the pool) — speedups are "
        "relative to each family's single-process fused numpy run",
        "registered backends: "
        + ", ".join(
            f"{b.name} (fused drivers: "
            + (", ".join(b.fused_families) if b.fused_families else "none")
            + ")"
            for b in backends
        ),
        "sharded rows compose both layers: every pool worker drives its "
        "lane shard through the fused step_series path of the row's "
        "backend (shard payloads pin the parent's backend)",
        f"multiprocessing start method: {multiprocessing.get_start_method()} "
        "— under fork, workers inherit the parent's warmed JIT kernels; "
        "under spawn, sharded JIT rows include per-worker nopython "
        "compile time (the drivers compile once per process, on purpose: "
        "no on-disk numba cache)",
    ]
    if crossover:
        for name, data in crossover.items():
            result.notes.append(
                f"crossover [{name}]: one fused numba process "
                f"{data['numba_single_seconds']:.3f} s vs "
                f"{workers} fused numpy workers "
                f"{data['numpy_sharded_seconds']:.3f} s -> "
                f"{data['winner']}"
            )
    else:
        result.notes.append(
            "numba not registered on this host: the crossover against "
            "'one fused numba process' needs the numba CI leg (or a "
            "local numba install)"
        )
    result.data = {
        "rows": rows,
        "workers": workers,
        "n_cores": n_cores,
        "samples": samples_per_family,
        "backends": [b.name for b in backends],
        "fused_families": {b.name: list(b.fused_families) for b in backends},
        "crossover": crossover,
        "start_method": multiprocessing.get_start_method(),
    }
    return result
