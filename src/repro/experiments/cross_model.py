"""EXP-X4: cross-model check — Preisach identified against JA.

A discrete Preisach model is identified from the JA model's first-order
reversal curves (Everett method) and then asked to predict behaviour it
was *not* fitted to.  Expected shape:

* FORC-type branches (descents from the outer loop) reproduce well —
  they are what the identification saw;
* return (ascending) branches and minor loops deviate by more: the
  Preisach model has the congruency property, the JA model does not,
  so no Preisach weight set can match JA's inner loops exactly.  The
  residual *is* the measurement of JA's non-Preisach character;
* the clipped negative Everett mass (~2%) quantifies the same thing at
  identification time.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.comparison import compare_bh_curves
from repro.core.model import TimelessJAModel
from repro.core.sweep import run_sweep, waypoint_samples
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.ja.parameters import PAPER_PARAMETERS
from repro.preisach import identify_from_ja


@register("EXP-X4", "Cross-model: Everett-identified Preisach vs JA")
def run(
    n_cells: int = 160,
    h_sat: float = 20e3,
    dhmax: float = 50.0,
) -> ExperimentResult:
    preisach, clipped = identify_from_ja(
        PAPER_PARAMETERS, n_cells=n_cells, h_sat=h_sat, dhmax=dhmax
    )

    scenarios = [
        ("FORC descent (fitted family)", [h_sat, -10e3]),
        ("major loop (return branches)", [h_sat, -10e3, 10e3, -10e3, 10e3]),
        (
            "biased minor loop (prediction)",
            [h_sat, 5000.0, -1000.0, 5000.0, -1000.0, 5000.0],
        ),
        ("centred minor loop (prediction)", [h_sat, 0.0, 2000.0, -2000.0, 2000.0]),
    ]

    table = TextTable(
        ["scenario", "max |dB| [T]", "rms dB [T]", "max / swing [%]"],
        title=f"Preisach ({preisach.relay_count} relays, "
        f"{100 * clipped:.1f}% Everett mass clipped) vs JA",
    )
    data: dict[str, object] = {"clipped": clipped, "scenarios": {}}
    for label, schedule in scenarios:
        ja = TimelessJAModel(PAPER_PARAMETERS, dhmax=dhmax)
        run_sweep(ja, [0.0, h_sat])
        ja_sweep = run_sweep(ja, schedule, reset=False)

        preisach.saturate(True)
        preisach.apply_field(h_sat)
        samples = waypoint_samples(schedule, dhmax)
        h_p, _, b_p = preisach.trace(samples)

        distance = compare_bh_curves(ja_sweep.h, ja_sweep.b, h_p, b_p)
        swing = float(ja_sweep.b.max() - ja_sweep.b.min())
        table.add_row(
            label,
            distance.max_abs,
            distance.rms,
            100.0 * distance.max_abs / max(swing, 1e-12),
        )
        data["scenarios"][label] = {
            "distance": distance,
            "swing": swing,
        }

    result = ExperimentResult(
        experiment_id="EXP-X4",
        title="Cross-model: Everett-identified Preisach vs JA",
    )
    result.tables = [table]
    result.notes = [
        "the Preisach model is congruent by construction; the JA model "
        "is not — the minor-loop residuals measure that difference, "
        "not a numerical defect",
        "grid finding: a uniform threshold grid beats the "
        "magnetisation-quantile adaptive grid (which concentrates the "
        "clipped non-Preisach mass); see "
        "repro.preisach.identification.adaptive_nodes",
    ]
    result.data = data
    return result
