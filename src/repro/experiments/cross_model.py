"""EXP-X4: cross-model check — Preisach identified against JA.

A discrete Preisach model is identified from the JA model's first-order
reversal curves (Everett method) and then asked to predict behaviour it
was *not* fitted to.  Expected shape:

* FORC-type branches (descents from the outer loop) reproduce well —
  they are what the identification saw;
* return (ascending) branches and minor loops deviate by more: the
  Preisach model has the congruency property, the JA model does not,
  so no Preisach weight set can match JA's inner loops exactly.  The
  residual *is* the measurement of JA's non-Preisach character;
* the clipped negative Everett mass (~2%) quantifies the same thing at
  identification time.

Since the protocol refactor both models run through the shared layers:
the drive schedules come from the scenario registry (their vertices are
exact fractions of ``h_sat``, reproducing the historic tables bit for
bit) and both families execute as one-core ensembles on the
model-agnostic batch executor.
"""

from __future__ import annotations

from repro.analysis.comparison import compare_bh_curves
from repro.batch.engine import BatchTimelessModel
from repro.batch.preisach import BatchPreisachModel
from repro.batch.sweep import run_batch_series, run_batch_sweep
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.ja.parameters import PAPER_PARAMETERS
from repro.preisach import identify_from_ja
from repro.scenarios import get_scenario, scenario_samples


@register("EXP-X4", "Cross-model: Everett-identified Preisach vs JA")
def run(
    n_cells: int = 160,
    h_sat: float = 20e3,
    dhmax: float = 50.0,
) -> ExperimentResult:
    preisach, clipped = identify_from_ja(
        PAPER_PARAMETERS, n_cells=n_cells, h_sat=h_sat, dhmax=dhmax
    )
    preisach_batch = BatchPreisachModel.from_scalar_models([preisach])

    scenarios = [
        ("FORC descent (fitted family)", "forc-descent"),
        ("major loop (return branches)", "major-loop-return"),
        ("biased minor loop (prediction)", "biased-minor"),
        ("centred minor loop (prediction)", "centred-minor"),
    ]

    table = TextTable(
        ["scenario", "max |dB| [T]", "rms dB [T]", "max / swing [%]"],
        title=f"Preisach ({preisach.relay_count} relays, "
        f"{100 * clipped:.1f}% Everett mass clipped) vs JA",
    )
    data: dict[str, object] = {"clipped": clipped, "scenarios": {}}
    for label, name in scenarios:
        schedule = get_scenario(name).waypoints(h_sat)

        ja_batch = BatchTimelessModel([PAPER_PARAMETERS], dhmax=dhmax)
        run_batch_sweep(ja_batch, [0.0, h_sat], driver_step=dhmax / 4.0)
        ja_sweep = run_batch_sweep(
            ja_batch, schedule, driver_step=dhmax / 4.0, reset=False
        ).core(0)

        preisach_batch.saturate(True)
        preisach_batch.step(h_sat)
        samples = scenario_samples(name, h_sat, driver_step=dhmax)
        p_run = run_batch_series(preisach_batch, samples, reset=False)
        h_p, b_p = samples, p_run.b[:, 0]

        distance = compare_bh_curves(ja_sweep.h, ja_sweep.b, h_p, b_p)
        swing = float(ja_sweep.b.max() - ja_sweep.b.min())
        table.add_row(
            label,
            distance.max_abs,
            distance.rms,
            100.0 * distance.max_abs / max(swing, 1e-12),
        )
        data["scenarios"][label] = {
            "distance": distance,
            "swing": swing,
        }

    result = ExperimentResult(
        experiment_id="EXP-X4",
        title="Cross-model: Everett-identified Preisach vs JA",
    )
    result.tables = [table]
    result.notes = [
        "the Preisach model is congruent by construction; the JA model "
        "is not — the minor-loop residuals measure that difference, "
        "not a numerical defect",
        "grid finding: a uniform threshold grid beats the "
        "magnetisation-quantile adaptive grid (which concentrates the "
        "clipped non-Preisach mass); see "
        "repro.preisach.identification.adaptive_nodes",
        "both models run as one-core ensembles on the model-agnostic "
        "batch executor, with schedules from the scenario registry",
    ]
    result.data = data
    return result
