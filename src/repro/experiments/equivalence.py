"""EXP-T1: "both implementations produce virtually identical results".

Runs the same major-loop excursion through three implementations —

* the SystemC-style module on the event kernel,
* the VHDL-AMS timeless architecture on the analogue solver,
* the functional core (no HDL machinery at all),

and measures pairwise branch-resampled B(H) distances.  The paper's
claim holds when the distances are small against the loop's B swing
(a few percent; the residual comes from driver granularity and the
published one-event output lag, both documented in the module docs).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.comparison import compare_bh_curves
from repro.constants import DEFAULT_DHMAX, FIG1_H_MAX
from repro.core.model import TimelessJAModel
from repro.core.sweep import run_sweep, waypoint_samples
from repro.experiments.registry import ExperimentResult, register
from repro.hdl.systemc import run_systemc_sweep
from repro.hdl.vhdlams import SolverOptions, TimelessJAArchitecture, TransientSolver
from repro.io.table import TextTable
from repro.ja.parameters import PAPER_PARAMETERS
from repro.waveforms import TriangularWave
from repro.waveforms.sweeps import major_loop_waypoints


@register("EXP-T1", "SystemC vs VHDL-AMS vs functional core equivalence")
def run(
    dhmax: float = DEFAULT_DHMAX,
    h_max: float = FIG1_H_MAX,
    driver_step: float | None = None,
) -> ExperimentResult:
    if driver_step is None:
        driver_step = dhmax / 4.0
    waypoints = major_loop_waypoints(h_max, cycles=1)

    # SystemC on the event kernel.
    samples = waypoint_samples(waypoints, driver_step)
    systemc = run_systemc_sweep(PAPER_PARAMETERS, samples, dhmax=dhmax)

    # Functional core.
    model = TimelessJAModel(PAPER_PARAMETERS, dhmax=dhmax)
    functional = run_sweep(model, waypoints, driver_step=driver_step)

    # VHDL-AMS timeless architecture: triangular source covering the
    # same three branches (0 -> +H, +H -> -H, -H -> +H), i.e. 1.25
    # periods of a symmetric triangle.
    period = 10e-3
    wave = TriangularWave(h_max, period)
    arch = TimelessJAArchitecture(PAPER_PARAMETERS, wave, dhmax=dhmax)
    # dt_max chosen so one analogue step moves H by about driver_step.
    rate = 4.0 * h_max / period
    dt_max = driver_step / rate
    solver = TransientSolver(
        arch.system, SolverOptions(dt_initial=dt_max / 16.0, dt_max=dt_max)
    )
    transient = solver.run(t_stop=1.25 * period)
    h_ams = transient.of(arch.q_h)
    b_ams = transient.of(arch.q_b)

    b_swing = float(np.max(systemc.b) - np.min(systemc.b))

    pairs = [
        ("SystemC vs functional core", systemc.h, systemc.b, functional.h, functional.b),
        ("SystemC vs VHDL-AMS", systemc.h, systemc.b, h_ams, b_ams),
        ("VHDL-AMS vs functional core", h_ams, b_ams, functional.h, functional.b),
    ]
    table = TextTable(
        ["pair", "max |dB| [T]", "rms dB [T]", "max/swing [%]"],
        title=f"Pairwise B(H) distances (B swing = {b_swing:.3f} T)",
    )
    distances = {}
    for name, h1, b1, h2, b2 in pairs:
        distance = compare_bh_curves(h1, b1, h2, b2)
        distances[name] = distance
        table.add_row(
            name,
            distance.max_abs,
            distance.rms,
            100.0 * distance.max_abs / b_swing,
        )

    result = ExperimentResult(
        experiment_id="EXP-T1",
        title="SystemC vs VHDL-AMS vs functional core equivalence",
    )
    result.tables = [table]
    result.notes = [
        "paper: 'both implementations produce virtually identical results'",
        f"dhmax = {dhmax} A/m; SystemC driver step = {driver_step} A/m; "
        f"AMS dt_max = {dt_max:.3e} s",
        "residual differences come from driver granularity and the "
        "published one-event Bsig lag of the SystemC listing",
    ]
    result.data = {
        "distances": distances,
        "b_swing": b_swing,
        "systemc": systemc,
        "functional": functional,
        "ams_h": h_ams,
        "ams_b": b_ams,
        "ams_report": transient.report,
    }
    return result
