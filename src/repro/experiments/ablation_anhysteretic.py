"""EXP-A2: ablation of the anhysteretic curve choice.

The paper's listing evaluates ``Lang_mod(He/a)`` — the modified
(arctangent) Langevin — while the text says the parameters are Jiles &
Atherton's "except for a2".  This ablation quantifies what each
plausible reading changes on the Figure 1 workload:

* modified Langevin with shape ``a2`` = 3500 A/m (our default reading);
* modified Langevin with shape ``a`` = 2000 A/m (the listing verbatim);
* classic Langevin with ``a`` = 2000 A/m (the 1984 original).

All three produce the same qualitative figure; the table records how
Hc/Br/Bmax move, bounding the impact of the ambiguity.
"""

from __future__ import annotations

from repro.analysis.loops import extract_loops
from repro.analysis.metrics import loop_metrics
from repro.constants import DEFAULT_DHMAX, FIG1_H_MAX
from repro.core.model import TimelessJAModel
from repro.core.sweep import run_sweep
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.ja.anhysteretic import make_anhysteretic
from repro.ja.parameters import PAPER_PARAMETERS
from repro.waveforms.sweeps import major_loop_waypoints


@register("EXP-A2", "Ablation: anhysteretic curve (modified vs classic Langevin)")
def run(
    dhmax: float = DEFAULT_DHMAX, h_max: float = FIG1_H_MAX
) -> ExperimentResult:
    waypoints = major_loop_waypoints(h_max, cycles=1)
    variants = [
        (
            "modified Langevin, a2=3500 (default)",
            make_anhysteretic(PAPER_PARAMETERS, "modified-langevin", use_a2=True),
        ),
        (
            "modified Langevin, a=2000 (listing verbatim)",
            make_anhysteretic(PAPER_PARAMETERS, "modified-langevin", use_a2=False),
        ),
        (
            "classic Langevin, a=2000 (JA 1984)",
            make_anhysteretic(PAPER_PARAMETERS, "langevin"),
        ),
    ]
    table = TextTable(
        ["anhysteretic", "Hc [A/m]", "Br [T]", "Bmax [T]", "area [J/m^3]"],
        title=f"Major loop +/-{h_max:g} A/m, dhmax={dhmax} A/m",
    )
    data: dict[str, object] = {}
    for name, anhysteretic in variants:
        model = TimelessJAModel(
            PAPER_PARAMETERS, dhmax=dhmax, anhysteretic=anhysteretic
        )
        sweep = run_sweep(model, waypoints)
        major = extract_loops(sweep.h, sweep.b)[0]
        metrics = loop_metrics(major.h, major.b)
        table.add_row(
            name, metrics.coercivity, metrics.remanence, metrics.b_max, metrics.area
        )
        data[name] = {"sweep": sweep, "metrics": metrics}

    result = ExperimentResult(
        experiment_id="EXP-A2",
        title="Ablation: anhysteretic curve (modified vs classic Langevin)",
    )
    result.tables = [table]
    result.notes = [
        "the paper's text/listing ambiguity on a vs a2 is bounded by "
        "these rows; the loop stays qualitatively identical",
    ]
    result.data = data
    return result
