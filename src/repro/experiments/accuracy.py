"""EXP-T5: accuracy and convergence of the timeless discretisation.

The paper claims "superior accuracy".  We quantify: the timeless model
is a Forward Euler scheme in H, so its error against the exact solution
of the same (guarded) Jiles-Atherton equation should shrink linearly
with ``dhmax``.  The exact solution comes from
:mod:`repro.ja.reference` (LSODA at 1e-10 relative tolerance, integrated
in H segment by segment).  The observed convergence order is the slope
of log(error) vs log(dhmax).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.comparison import compare_bh_curves
from repro.constants import FIG1_H_MAX
from repro.core.model import TimelessJAModel
from repro.core.sweep import run_sweep_dense
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.ja.parameters import PAPER_PARAMETERS
from repro.ja.reference import solve_waypoints
from repro.waveforms.sweeps import major_loop_waypoints


@register("EXP-T5", "Convergence of the timeless scheme vs exact reference")
def run(
    h_max: float = FIG1_H_MAX,
    dhmax_values: Sequence[float] = (400.0, 200.0, 100.0, 50.0, 25.0, 12.5),
) -> ExperimentResult:
    waypoints = major_loop_waypoints(h_max, cycles=1)
    reference = solve_waypoints(PAPER_PARAMETERS, waypoints)
    b_swing = float(reference.b.max() - reference.b.min())

    table = TextTable(
        ["dhmax [A/m]", "max |dB| [T]", "rms dB [T]", "max/swing [%]"],
        title="Timeless Forward-Euler-in-H error vs LSODA reference",
    )
    errors: list[float] = []
    for dhmax in dhmax_values:
        model = TimelessJAModel(PAPER_PARAMETERS, dhmax=dhmax, accept_equal=True)
        sweep = run_sweep_dense(model, waypoints)
        distance = compare_bh_curves(
            sweep.h, sweep.b, reference.h, reference.b
        )
        errors.append(distance.max_abs)
        table.add_row(
            dhmax,
            distance.max_abs,
            distance.rms,
            100.0 * distance.max_abs / b_swing,
        )

    # Observed order: least-squares slope of log(err) vs log(dhmax).
    logs_h = np.log(np.asarray(dhmax_values, dtype=float))
    logs_e = np.log(np.asarray(errors))
    order = float(np.polyfit(logs_h, logs_e, 1)[0])

    result = ExperimentResult(
        experiment_id="EXP-T5",
        title="Convergence of the timeless scheme vs exact reference",
    )
    result.tables = [table]
    result.notes = [
        f"observed convergence order: {order:.2f} "
        "(Forward Euler in H: expected ~1)",
        "paper: 'superior accuracy and numerical stability especially at "
        "the discontinuity points'",
    ]
    result.data = {
        "dhmax_values": list(dhmax_values),
        "errors": errors,
        "order": order,
        "b_swing": b_swing,
    }
    return result
