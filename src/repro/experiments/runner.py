"""Command-line runner: regenerate paper artefacts to a results directory.

Usage::

    repro-experiments --list
    repro-experiments EXP-F1 EXP-T2
    repro-experiments --all --output results/

Each experiment writes ``<id>.txt`` (tables + notes) and any extra
artefacts (e.g. the ASCII Figure 1, CSV data) under the output
directory.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.backend import BACKEND_ENV, list_backends, resolve_backend
from repro.errors import ExperimentError
from repro.experiments.registry import list_experiments, run_experiment
from repro.io.csvio import write_bh_csv


def results_header(
    backend: "str | None" = None,
    workers: "int | None" = None,
    threads: "int | None" = None,
    calibration: "str | None" = None,
) -> str:
    """The shared ``# key: value`` stamp every results file leads with.

    One helper instead of per-file f-strings so the header vocabulary
    stays fixed — ``backend`` (array backend actually measured),
    ``workers`` (pool width), ``threads`` (lane threads per worker) and
    ``calibration`` (the :attr:`Calibration.calibration_id` that planned
    the run) — and so a grep for ``# backend:`` works across every
    ``results/`` artefact.  ``None`` fields are omitted, keeping old
    single-axis records byte-compatible.
    """
    fields = (
        ("backend", backend),
        ("workers", workers),
        ("threads", threads),
        ("calibration", calibration),
    )
    return "".join(
        f"# {key}: {value}\n" for key, value in fields if value is not None
    )


def write_bench_json(
    path: Path,
    experiment_id: str,
    records: "list[dict]",
    *,
    backend: "str | None" = None,
    workers: "int | None" = None,
    threads: "int | None" = None,
    calibration: "str | None" = None,
) -> Path:
    """Machine-readable bench trajectory: ``results/BENCH-<exp>.json``.

    The JSON twin of :func:`results_header` + the ``.txt`` tables: the
    same stamp vocabulary (backend / workers / threads / calibration)
    at the top level, plus one record per measured operation — each a
    dict with at least ``op``, ``n`` and ``seconds``, free to carry
    more.  Benchmarks write these alongside the text reports so the
    performance trajectory is diffable and plottable across runs
    without parsing tables.  Written atomically (temp file +
    ``os.replace``) — CI uploads these as artifacts and must never
    capture a half-written file.
    """
    for record in records:
        missing = {"op", "n", "seconds"} - set(record)
        if missing:
            raise ExperimentError(
                f"bench record is missing {sorted(missing)}: {record!r}"
            )
    payload = {
        "experiment": experiment_id,
        "records": list(records),
    }
    for key, value in (
        ("backend", backend),
        ("workers", workers),
        ("threads", threads),
        ("calibration", calibration),
    ):
        if value is not None:
            payload[key] = value
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except FileNotFoundError:
            pass
        raise
    return path


def _write_result(result, output_dir: Path, backend_name: str) -> list[Path]:
    output_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    # The backend header makes every regenerated table attributable:
    # the same experiment on a JIT backend is a different measurement.
    header = results_header(backend=backend_name)
    report_path = output_dir / f"{result.experiment_id}.txt"
    report_path.write_text(header + result.render() + "\n")
    written.append(report_path)

    for stem, text in result.artifacts.items():
        artifact_path = output_dir / f"{result.experiment_id}_{stem}.txt"
        artifact_path.write_text(text + "\n")
        written.append(artifact_path)

    h = result.data.get("h")
    b = result.data.get("b")
    if isinstance(h, np.ndarray) and isinstance(b, np.ndarray):
        csv_path = output_dir / f"{result.experiment_id}_bh.csv"
        write_bh_csv(csv_path, h, b, metadata={"experiment": result.experiment_id})
        written.append(csv_path)
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures/tables (see DESIGN.md).",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (e.g. EXP-F1)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--output",
        default="results",
        help="output directory (default: ./results)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help=(
            "array backend for batch engines (registered: "
            + ", ".join(b.name for b in list_backends())
            + f"); defaults to ${BACKEND_ENV} or numpy"
        ),
    )
    args = parser.parse_args(argv)

    backend = resolve_backend(args.backend)
    if args.backend is not None:
        # Experiments construct their models through the registry and
        # scenario surfaces, which resolve the environment default —
        # exporting the choice is what makes --backend reach them.
        os.environ[BACKEND_ENV] = backend.name

    if args.list:
        for experiment in list_experiments():
            print(f"{experiment.experiment_id}: {experiment.title}")
        return 0

    ids = [e.experiment_id for e in list_experiments()] if args.all else args.ids
    if not ids:
        parser.print_usage()
        print("error: give experiment ids, --all or --list", file=sys.stderr)
        return 2

    output_dir = Path(args.output)
    for experiment_id in ids:
        print(f"running {experiment_id} (backend: {backend.name}) ...", flush=True)
        result = run_experiment(experiment_id)
        print(result.render())
        print()
        for path in _write_result(result, output_dir, backend.name):
            print(f"  wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
