"""Experiment registry: one module per paper artefact.

Each experiment regenerates one figure, table or quantified claim from
the paper (see DESIGN.md section 4 for the index).  Experiments return
:class:`repro.experiments.registry.ExperimentResult` objects with text
tables and raw data; the CLI runner writes them to disk.
"""

# Importing the experiment modules registers them.
from repro.experiments import (  # noqa: F401  (import for side effect)
    ablation_anhysteretic,
    ablation_guards,
    accuracy,
    backend_fused,
    batch_ensemble,
    batch_families,
    circuit_demo,
    cross_model,
    dist_bench,
    equivalence,
    fig1,
    flux_driven,
    fused_sharded,
    minor_loops,
    parallel_ensemble,
    parameter_fit,
    performance,
    planner_bench,
    scenario_grid,
    service_bench,
    stability,
)
from repro.experiments.registry import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
