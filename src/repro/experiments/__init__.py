"""Experiment registry: one module per paper artefact.

Each experiment regenerates one figure, table or quantified claim from
the paper (see DESIGN.md section 4 for the index).  Experiments return
:class:`repro.experiments.registry.ExperimentResult` objects with text
tables and raw data; the CLI runner writes them to disk.
"""

from repro.experiments.registry import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)

# Importing the experiment modules registers them.
from repro.experiments import (  # noqa: F401  (import for side effect)
    accuracy,
    ablation_anhysteretic,
    ablation_guards,
    backend_fused,
    batch_ensemble,
    batch_families,
    circuit_demo,
    cross_model,
    equivalence,
    fig1,
    flux_driven,
    fused_sharded,
    minor_loops,
    parallel_ensemble,
    parameter_fit,
    performance,
    planner_bench,
    scenario_grid,
    service_bench,
    stability,
)

__all__ = [
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
