"""EXP-X5: the full model-family x scenario grid, one batched run each.

The payoff of the protocol refactor: three model families — timeless JA,
Everett-identified Preisach, the classic time-domain chain — built over
the *same* perturbed material ensemble, each driven through the shared
scenario catalogue as one lockstep batch per (family, scenario) cell.
No per-model drive code exists anywhere in this experiment; the
families differ only in which batch model the registry stacks.

The table records, per cell, the lanes that stayed finite and each
family's own pathology/activity counters — the cross-model robustness
picture (the unguarded time-domain chain accumulates negative-slope
evaluations and may freeze lanes; the paper's timeless model and the
relay model stay clean) over scenario diversity the original paper
never exercised.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stability import audit_batch_result
from repro.batch.engine import BatchTimelessModel
from repro.batch.sweep import run_batch_series
from repro.batch.time_domain import BatchTimeDomainModel
from repro.constants import DEFAULT_DHMAX
from repro.core.slope import SlopeGuards
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.models.registry import perturbed_parameters
from repro.preisach.identification import identify_ensemble_from_ja
from repro.scenarios import get_scenario

#: The grid's scenario axis (5+ shared schedules incl. one per-core).
SCENARIO_NAMES = (
    "major-loop",
    "minor-loop-ladder",
    "demagnetisation",
    "forc-family",
    "inrush",
    "harmonic",
)


def _counter_summary(counters: dict[str, np.ndarray]) -> str:
    """Compact per-family counter totals for the table."""
    parts = [f"{key}={int(np.sum(value))}" for key, value in sorted(counters.items())]
    return ", ".join(parts)


@register("EXP-X5", "Scenario grid: three model families, batched ensembles")
def run(
    n_cores: int = 4,
    h_max: float = 10e3,
    driver_step: float = 100.0,
    n_cells: int = 16,
    identification_dhmax: float = 200.0,
    seed: int = 2006,
) -> ExperimentResult:
    params = perturbed_parameters(n_cores, seed)

    preisach_batch, clipped = identify_ensemble_from_ja(
        params,
        n_cells=n_cells,
        h_sat=2.0 * h_max,
        dhmax=identification_dhmax,
    )
    batches = [
        ("timeless", BatchTimelessModel(params, dhmax=DEFAULT_DHMAX)),
        ("preisach", preisach_batch),
        (
            "time-domain",
            BatchTimeDomainModel(params, guards=SlopeGuards.none()),
        ),
    ]

    table = TextTable(
        [
            "family",
            "scenario",
            "samples",
            "finite lanes",
            "acceptable",
            "mean |B|peak [T]",
            "family counters",
        ],
        title=(
            f"{len(batches)} families x {len(SCENARIO_NAMES)} scenarios, "
            f"{n_cores} cores each (driver step {driver_step:g} A/m, "
            f"h_max {h_max:g} A/m)"
        ),
    )
    data: dict[str, object] = {
        "n_cores": n_cores,
        "scenarios": list(SCENARIO_NAMES),
        "clipped": clipped,
        "cells": {},
    }
    for family, batch in batches:
        for name in SCENARIO_NAMES:
            samples = get_scenario(name).samples(
                h_max, driver_step, n_cores=n_cores
            )
            result = run_batch_series(batch, samples, reset=True)
            finite = int(result.finite_lanes.sum())
            audits = audit_batch_result(result)
            acceptable = sum(audit.acceptable() for audit in audits)
            with np.errstate(invalid="ignore"):
                peak = float(np.nanmean(np.nanmax(np.abs(result.b), axis=0)))
            table.add_row(
                family,
                name,
                len(result),
                f"{finite}/{n_cores}",
                f"{acceptable}/{n_cores}",
                peak,
                _counter_summary(result.counters),
            )
            data["cells"][(family, name)] = result
            data.setdefault("audits", {})[(family, name)] = audits

    result_obj = ExperimentResult(
        experiment_id="EXP-X5",
        title="Scenario grid: three model families, batched ensembles",
    )
    result_obj.tables = [table]
    result_obj.notes = [
        "all three families share one perturbed material ensemble and "
        "run every scenario through the same model-agnostic lockstep "
        "executor — one batched run per grid cell",
        "the time-domain rows run unguarded (the historical chain): its "
        "negative-slope evaluations and frozen lanes are the pathology "
        "the paper's timeless discretisation eliminates",
        f"Preisach lanes identified at h_sat = {2.0 * h_max:g} A/m with "
        f"{n_cells}x{n_cells} cells; clipped non-Preisach Everett mass "
        f"per lane: {np.round(100 * clipped, 2).tolist()} %",
    ]
    result_obj.data = data
    return result_obj
