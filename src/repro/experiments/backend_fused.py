"""EXP-B4: pluggable array backends — fused sweep vs per-sample dispatch.

The scaling story of the backend layer, measured on the timeless family
(the paper's model, and the family with a compiled JIT driver):

1. **per-sample dispatch** — the reference executor loop
   (``run_batch_series(..., fused=False)``): one Python round-trip per
   driver sample (``step`` + property probes + extras dict);
2. **fused sweep, numpy backend** — ``step_series`` advances the whole
   sample axis in one call over the same NumPy ufuncs, **bitwise
   identical** to the per-sample loop (asserted here, lane by lane);
3. **fused sweep, numba backend** — when numba is importable, the whole
   recurrence runs as one nopython-compiled loop, held to the
   backend's ``rtol`` tier instead (the JIT's libm kernels differ from
   NumPy's by 1 ulp; discretiser decisions still match exactly).

``benchmarks/test_bench_backend.py`` asserts the headline (fused >= 2x
over per-sample at N = 256) and regenerates this table into
``results/EXP-B4.txt``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backend import BACKEND_ENV, list_backends, resolve_backend
from repro.batch.engine import BatchTimelessModel
from repro.batch.sweep import run_batch_series
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.models.registry import get_family
from repro.scenarios import scenario_samples


def make_timeless_batch(
    n_cores: int, seed: int = 0, backend: str | None = "numpy"
) -> BatchTimelessModel:
    """The benchmark ensemble: the registry's heterogeneous timeless
    recipe (perturbed materials, per-core ``dhmax``/``accept_equal``),
    stacked onto an explicit backend."""
    models = get_family("timeless").make_models(n_cores, seed)
    return BatchTimelessModel.from_scalar_models(models).use_backend(
        resolve_backend(backend)
    )


def bitwise_equal_lanes(reference, candidate) -> int:
    """Lanes of ``candidate`` bitwise equal to ``reference`` (NaN-aware)."""
    equal = np.all(
        (candidate.m == reference.m) | (np.isnan(candidate.m) & np.isnan(reference.m)),
        axis=0,
    ) & np.all(
        (candidate.b == reference.b) | (np.isnan(candidate.b) & np.isnan(reference.b)),
        axis=0,
    )
    return int(np.sum(equal & np.all(candidate.updated == reference.updated, axis=0)))


def max_relative_deviation(reference, candidate) -> float:
    """Largest |Δb| / max|b| over the whole trajectory matrix."""
    scale = float(np.max(np.abs(reference.b)))
    return float(np.max(np.abs(candidate.b - reference.b))) / max(scale, 1e-300)


@register("EXP-B4", "Array backends: fused sweep vs per-sample dispatch")
def run(
    n_cores: int = 256,
    h_max: float = 10e3,
    driver_step: float = 100.0,
    seed: int = 0,
) -> ExperimentResult:
    h = scenario_samples("minor-loop-ladder", h_max, driver_step)
    core_steps = n_cores * len(h)

    start = time.perf_counter()
    reference = run_batch_series(
        make_timeless_batch(n_cores, seed), h, fused=False
    )
    per_sample_seconds = time.perf_counter() - start

    rows = [
        {
            "backend": "numpy",
            "mode": "per-sample loop",
            "seconds": per_sample_seconds,
            "speedup": 1.0,
            "equivalence": "reference",
        }
    ]
    fused_speedup = 0.0
    equal_lanes = -1
    for backend in list_backends():
        batch = make_timeless_batch(n_cores, seed, backend=backend.name)
        if not backend.exact:
            run_batch_series(batch, h)  # JIT warm-up outside the timing
        start = time.perf_counter()
        fused = run_batch_series(batch, h)
        seconds = time.perf_counter() - start
        speedup = per_sample_seconds / max(seconds, 1e-12)
        if backend.exact:
            lanes = bitwise_equal_lanes(reference, fused)
            equivalence = f"bitwise {lanes}/{n_cores} lanes"
            if backend.name == "numpy":
                fused_speedup = speedup
                equal_lanes = lanes
        else:
            deviation = max_relative_deviation(reference, fused)
            within = deviation <= backend.rtol
            equivalence = (
                f"max rel dev {deviation:.2e} "
                f"({'within' if within else 'OUTSIDE'} rtol {backend.rtol:g})"
            )
        rows.append(
            {
                "backend": backend.name,
                "mode": "fused step_series",
                "seconds": seconds,
                "speedup": speedup,
                "equivalence": equivalence,
            }
        )

    table = TextTable(
        [
            "backend",
            "sweep path",
            "seconds",
            "speedup",
            "core-steps / s",
            "equivalence vs per-sample",
        ],
        title=(
            f"timeless family, {n_cores} cores x {len(h)} samples "
            f"(minor-loop-ladder, step {driver_step:g} A/m)"
        ),
    )
    for row in rows:
        table.add_row(
            row["backend"],
            row["mode"],
            row["seconds"],
            f"{row['speedup']:.1f}x",
            core_steps / max(row["seconds"], 1e-12),
            row["equivalence"],
        )

    registered = ", ".join(b.name for b in list_backends())
    result = ExperimentResult(
        experiment_id="EXP-B4",
        title="Array backends: fused sweep vs per-sample dispatch",
    )
    result.tables = [table]
    result.notes = [
        f"registered backends: {registered}; default for this run: "
        f"{resolve_backend(None).name} (selectable per call or via "
        f"${BACKEND_ENV})",
        "the numpy fused path executes the per-sample loop's exact "
        "IEEE operation sequence with the per-sample Python dispatch "
        "stripped out — bitwise, not approximate",
        "the numba fused path (when registered) compiles the whole "
        "recurrence to one nopython loop and is held to the backend's "
        "rtol tier; discretiser decisions still match exactly",
    ]
    result.data = {
        "rows": rows,
        "n_cores": n_cores,
        "samples": len(h),
        "per_sample_seconds": per_sample_seconds,
        "fused_speedup": fused_speedup,
        "equal_lanes": equal_lanes,
        "backends": [b.name for b in list_backends()],
    }
    return result
