"""EXP-X1: mixed-domain extension — RL circuit with a hysteretic inductor.

The paper motivates AMS HDLs with mixed-physical-domain modelling.  This
experiment drives a JA-cored inductor through a series resistor from a
sinusoidal source and measures the classic hysteretic-core signatures:

* inrush asymmetry: the first current peak exceeds the settled peak
  (remanence + saturation), strongest when energising at voltage zero;
* core loss: the enclosed B-H area times core volume per cycle;
* magnetising-current distortion (peak/rms ratio well above sqrt(2)).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import loop_area
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.magnetics.circuit import RLDriveCircuit
from repro.magnetics.geometry import ToroidCore
from repro.magnetics.inductor import HysteresisInductor
from repro.magnetics.material import PAPER_STEEL
from repro.waveforms import SineWave


@register("EXP-X1", "Mixed-domain RL circuit with hysteretic inductor")
def run(
    v_amplitude: float = 230.0,
    frequency: float = 50.0,
    resistance: float = 2.0,
    turns: int = 1500,
    cycles: int = 6,
    steps_per_cycle: int = 400,
) -> ExperimentResult:
    # Sized so the rated flux swing (V/(omega*N*A) ~ 1.2 T) sits just
    # below the knee of the paper's material: the settled current is
    # magnetising-dominated while energisation at the voltage zero
    # drives the core well into saturation (inrush).
    core = ToroidCore(inner_radius=0.04, outer_radius=0.06, height=0.02)
    inductor = HysteresisInductor(PAPER_STEEL, core, turns=turns, dhmax=25.0)
    source = SineWave(v_amplitude, frequency)
    circuit = RLDriveCircuit(inductor, resistance, source)

    period = 1.0 / frequency
    dt = period / steps_per_cycle
    result_run = circuit.run(t_stop=cycles * period, dt=dt)

    # First-cycle vs settled-cycle current peaks.
    per_cycle = steps_per_cycle
    i = result_run.i
    first_peak = float(np.max(np.abs(i[: per_cycle + 1])))
    settled_peak = float(np.max(np.abs(i[-per_cycle:])))
    rms_settled = float(np.sqrt(np.mean(i[-per_cycle:] ** 2)))
    crest = settled_peak / rms_settled if rms_settled > 0 else float("nan")

    # Core loss from the last full cycle.
    h_cycle = result_run.h[-per_cycle:]
    b_cycle = result_run.b[-per_cycle:]
    area = loop_area(h_cycle, b_cycle)
    loss_power = area * core.volume * frequency

    table = TextTable(["quantity", "value"], title="RL drive summary")
    table.add_row("first-cycle current peak [A]", first_peak)
    table.add_row("settled current peak [A]", settled_peak)
    table.add_row("inrush ratio", first_peak / settled_peak)
    table.add_row("settled crest factor (sine = 1.414)", crest)
    table.add_row("loop area [J/m^3/cycle]", area)
    table.add_row("core loss [W]", loss_power)
    table.add_row("newton failures", result_run.newton_failures)

    result = ExperimentResult(
        experiment_id="EXP-X1",
        title="Mixed-domain RL circuit with hysteretic inductor",
    )
    result.tables = [table]
    result.notes = [
        "expected shape: inrush ratio > 1, crest factor > sqrt(2) "
        "(magnetising-current distortion), zero Newton failures",
    ]
    result.data = {
        "run": result_run,
        "first_peak": first_peak,
        "settled_peak": settled_peak,
        "crest_factor": crest,
        "loop_area": area,
        "loss_power": loss_power,
        "volume": core.volume,
    }
    return result
