"""EXP-T3: "long simulation times" — effort of timeless vs solver-coupled.

Measures wall time and work counters (Euler steps / accepted analogue
steps / Newton iterations) for the Figure 1 workload under each
formulation.  The pytest-benchmark bench re-times the same callables;
this module provides them plus a one-shot comparison table.
"""

from __future__ import annotations

import time

from repro.constants import DEFAULT_DHMAX, FIG1_H_MAX
from repro.core.model import TimelessJAModel
from repro.core.sweep import run_sweep, waypoint_samples
from repro.experiments.registry import ExperimentResult, register
from repro.hdl.systemc import run_systemc_sweep
from repro.hdl.vhdlams import (
    IntegJAArchitecture,
    SolverOptions,
    TimelessJAArchitecture,
    TransientSolver,
)
from repro.io.table import TextTable
from repro.ja.parameters import PAPER_PARAMETERS
from repro.solver.newton import NewtonOptions
from repro.waveforms import TriangularWave
from repro.waveforms.sweeps import major_loop_waypoints


def timeless_workload(
    dhmax: float = DEFAULT_DHMAX, h_max: float = FIG1_H_MAX
) -> dict[str, float]:
    """One major loop through the functional timeless core."""
    model = TimelessJAModel(PAPER_PARAMETERS, dhmax=dhmax)
    sweep = run_sweep(model, major_loop_waypoints(h_max, cycles=1))
    return {"euler_steps": sweep.euler_steps, "samples": len(sweep)}


def batch_workload(
    n_cores: int = 256,
    dhmax: float = DEFAULT_DHMAX,
    h_max: float = FIG1_H_MAX,
) -> dict[str, float]:
    """The same major loop on every lane of a batch ensemble.

    Homogeneous on purpose: it measures the engine's per-sample
    dispatch amortisation against ``timeless_workload`` run N times
    (EXP-B1 covers the heterogeneous case).
    """
    from repro.batch.sweep import sweep as batch_sweep

    result = batch_sweep(
        [PAPER_PARAMETERS] * n_cores,
        major_loop_waypoints(h_max, cycles=1),
        dhmax=dhmax,
        driver_step=dhmax / 4.0,
    )
    return {
        "euler_steps": int(result.euler_steps.sum()),
        "samples": len(result),
        "cores": n_cores,
    }


def systemc_workload(
    dhmax: float = DEFAULT_DHMAX, h_max: float = FIG1_H_MAX
) -> dict[str, float]:
    """One major loop through the event-kernel SystemC model."""
    samples = waypoint_samples(major_loop_waypoints(h_max, cycles=1), dhmax / 4.0)
    trace = run_systemc_sweep(PAPER_PARAMETERS, samples, dhmax=dhmax)
    return {
        "euler_steps": trace.euler_steps,
        "delta_cycles": trace.delta_cycles,
        "process_runs": trace.process_runs,
    }


def ams_timeless_workload(
    dhmax: float = DEFAULT_DHMAX,
    h_max: float = FIG1_H_MAX,
    period: float = 10e-3,
) -> dict[str, float]:
    """One major loop through the VHDL-AMS timeless architecture."""
    wave = TriangularWave(h_max, period)
    arch = TimelessJAArchitecture(PAPER_PARAMETERS, wave, dhmax=dhmax)
    solver = TransientSolver(
        arch.system, SolverOptions(dt_initial=1e-6, dt_max=5e-5)
    )
    transient = solver.run(t_stop=1.25 * period)
    report = transient.report
    return {
        "accepted_steps": report.accepted_steps,
        "newton_iterations": report.newton_iterations,
        "gave_up": report.gave_up,
    }


def ams_integ_workload(
    h_max: float = FIG1_H_MAX,
    period: float = 10e-3,
    residual_tol: float = 1e-4,
) -> dict[str, float]:
    """One major loop through the 'INTEG architecture.

    ``residual_tol`` is loosened by default so the run *completes* (at
    tight tolerance it aborts — that datum belongs to EXP-T2); the
    point here is the work required when it does complete.
    """
    wave = TriangularWave(h_max, period)
    arch = IntegJAArchitecture(PAPER_PARAMETERS, wave)
    options = SolverOptions(
        dt_initial=1e-6,
        dt_max=5e-5,
        newton=NewtonOptions(residual_tol=residual_tol),
    )
    transient = TransientSolver(arch.system, options).run(t_stop=1.25 * period)
    report = transient.report
    return {
        "accepted_steps": report.accepted_steps,
        "newton_iterations": report.newton_iterations,
        "gave_up": report.gave_up,
    }


@register("EXP-T3", "Simulation effort: timeless vs solver-coupled formulations")
def run(dhmax: float = DEFAULT_DHMAX, h_max: float = FIG1_H_MAX) -> ExperimentResult:
    workloads = [
        ("timeless functional core", timeless_workload, {"dhmax": dhmax}),
        ("batch ensemble (256 cores)", batch_workload, {"dhmax": dhmax}),
        ("timeless SystemC kernel", systemc_workload, {"dhmax": dhmax}),
        ("timeless VHDL-AMS", ams_timeless_workload, {"dhmax": dhmax}),
        ("'INTEG VHDL-AMS (loose tol)", ams_integ_workload, {}),
    ]
    table = TextTable(
        ["formulation", "wall time [s]", "work counters"],
        title=f"One major loop +/-{h_max:g} A/m",
    )
    data: dict[str, object] = {}
    baseline_time: float | None = None
    for name, fn, kwargs in workloads:
        start = time.perf_counter()
        counters = fn(**kwargs)
        elapsed = time.perf_counter() - start
        if baseline_time is None:
            baseline_time = elapsed
        summary = ", ".join(f"{k}={v}" for k, v in counters.items())
        table.add_row(name, elapsed, summary)
        data[name] = {"seconds": elapsed, "counters": counters}

    slowdown = data["'INTEG VHDL-AMS (loose tol)"]["seconds"] / max(
        data["timeless VHDL-AMS"]["seconds"], 1e-12
    )
    result = ExperimentResult(
        experiment_id="EXP-T3",
        title="Simulation effort: timeless vs solver-coupled formulations",
    )
    result.tables = [table]
    result.notes = [
        "paper: the timeless approach avoids 'long simulation times'",
        f"'INTEG vs timeless VHDL-AMS slowdown: {slowdown:.0f}x "
        "(same solver, same tolerances except the loosened Newton "
        "residual needed for 'INTEG to finish at all)",
    ]
    result.data = data
    return result
