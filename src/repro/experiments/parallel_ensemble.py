"""EXP-B3: sharded multi-process ensembles — equivalence and throughput.

The EXP-B1/EXP-B2 claims, lifted one scaling level: splitting a batch
ensemble into contiguous lane shards and driving the shards on a
``multiprocessing`` pool (:mod:`repro.parallel`) changes **nothing** —
the reassembled result is bitwise identical to the single-process
``run_batch_series``, for every model family, including uneven shard
splits — while throughput scales with workers once the per-sample
vectorised work is large enough to saturate a core.

Two tables:

1. **equivalence** — each registry family at N = 7 lanes over 3 pool
   workers (deliberately uneven: 3+2+2), bitwise-compared column by
   column against the in-process executor;
2. **throughput** — a wide Preisach relay ensemble (the heaviest
   per-sample tensor, N = 512 x 24 x 24 relays by default), single
   process vs the sharded pool.  The worker count is whatever the host
   (and the ``REPRO_PARALLEL_MAX_WORKERS`` cap) allows; the recorded
   row names it, so a 1-CPU container honestly reports ~1x.
"""

from __future__ import annotations

import time

import numpy as np

from repro.batch.preisach import BatchPreisachModel
from repro.batch.sweep import BatchSweepResult, run_batch_series
from repro.experiments.batch_families import make_preisach_ensemble
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.models.registry import list_families
from repro.parallel import available_cpus, resolve_workers, run_sharded
from repro.scenarios import scenario_samples

#: The equivalence sweep's deliberately uneven geometry.
EQUIVALENCE_CORES = 7
EQUIVALENCE_WORKERS = 3


def bitwise_equal_lanes(a: BatchSweepResult, b: BatchSweepResult) -> int:
    """Lanes on which every recorded channel agrees bit for bit
    (NaN-aware, so deliberately diverged time-domain lanes count when
    both paths diverge identically).  Diverging channel *sets* — a key
    in one result but not the other — make no lane equal."""
    if sorted(a.extras) != sorted(b.extras) or sorted(a.counters) != sorted(
        b.counters
    ):
        return 0
    if not np.array_equal(a.h, b.h):
        return 0
    per_lane = np.ones(a.n_cores, dtype=bool)
    for x, y in ((a.m, b.m), (a.b, b.b)):
        per_lane &= np.all((x == y) | (np.isnan(x) & np.isnan(y)), axis=0)
    per_lane &= np.all(a.updated == b.updated, axis=0)
    for key in a.extras:
        x, y = a.extras[key], b.extras[key]
        per_lane &= np.all((x == y) | (np.isnan(x) & np.isnan(y)), axis=0)
    for key in a.counters:
        per_lane &= a.counters[key] == b.counters[key]
    return int(per_lane.sum())


def _equivalence_rows(h_max_step: float = 40.0) -> list[dict]:
    # Only the REPRO_PARALLEL_MAX_WORKERS cap clamps an explicit
    # request (a 1-CPU host deliberately oversubscribes this tiny
    # workload — the uneven split is the point); record what ran.
    workers = resolve_workers(EQUIVALENCE_WORKERS)
    rows = []
    for family in list_families():
        batch = family.make_batch(EQUIVALENCE_CORES, seed=3)
        h = scenario_samples(
            "forc-family",
            family.h_scale,
            family.h_scale / h_max_step,
            n_cores=EQUIVALENCE_CORES,
        )
        reference = run_batch_series(batch, h)
        sharded = run_sharded(batch, h, n_workers=workers)
        rows.append(
            {
                "family": family.name,
                "n_cores": EQUIVALENCE_CORES,
                "workers": workers,
                "samples": len(h),
                "equal_lanes": bitwise_equal_lanes(reference, sharded),
                "channels": len(sharded.extras) + len(sharded.counters) + 3,
            }
        )
    return rows


@register("EXP-B3", "Sharded ensembles: bitwise equivalence and throughput")
def run(
    n_cores: int = 512,
    n_cells: int = 24,
    h_max: float = 10e3,
    driver_step: float = 400.0,
    n_workers: int | None = None,
    seed: int = 2006,
) -> ExperimentResult:
    workers = resolve_workers(n_workers)

    equivalence_rows = _equivalence_rows()
    eq_workers = equivalence_rows[0]["workers"]
    equivalence = TextTable(
        ["family", "lanes / workers", "samples", "bitwise-equal lanes"],
        title=(
            f"sharded vs single-process (forc-family drive, uneven "
            f"{EQUIVALENCE_CORES}-lane split over {eq_workers} worker(s); "
            f"{EQUIVALENCE_WORKERS} requested)"
        ),
    )
    for row in equivalence_rows:
        equivalence.add_row(
            row["family"],
            f"{row['n_cores']} / {row['workers']}",
            row["samples"],
            f"{row['equal_lanes']}/{row['n_cores']}",
        )

    models = make_preisach_ensemble(n_cores, n_cells=n_cells, seed=seed)
    batch = BatchPreisachModel.from_scalar_models(models)
    h = scenario_samples("minor-loop-ladder", h_max, driver_step)

    start = time.perf_counter()
    single = run_batch_series(batch, h)
    single_seconds = time.perf_counter() - start

    start = time.perf_counter()
    sharded = run_sharded(batch, h, n_workers=workers)
    sharded_seconds = time.perf_counter() - start

    speedup = single_seconds / max(sharded_seconds, 1e-12)
    equal = bitwise_equal_lanes(single, sharded)
    core_steps = n_cores * len(h)
    throughput = TextTable(
        [
            "workers",
            "single-process [s]",
            "sharded [s]",
            "speedup",
            "core-steps / s",
            "bitwise-equal lanes",
        ],
        title=(
            f"preisach relay tensor, {n_cores} cores x {len(h)} samples "
            f"({models[0].relay_count} relays/core, minor-loop-ladder, "
            f"step {driver_step:g} A/m)"
        ),
    )
    throughput.add_row(
        workers,
        single_seconds,
        sharded_seconds,
        f"{speedup:.2f}x",
        core_steps / max(sharded_seconds, 1e-12),
        f"{equal}/{n_cores}",
    )

    result = ExperimentResult(
        experiment_id="EXP-B3",
        title="Sharded ensembles: bitwise equivalence and throughput",
    )
    result.tables = [equivalence, throughput]
    result.notes = [
        "sharded reassembly is bitwise (h/m/b/updated, extras channels "
        "and per-core counters, lane order preserved) — shards are the "
        "same batch engines over lane slices, and every lane's "
        "computation is independent",
        f"host exposes {available_cpus()} CPU(s); the throughput row "
        f"used {workers} worker(s) — speedup scales with real cores, a "
        "1-CPU container honestly records ~1x",
        "workers rebuild their sub-ensembles from picklable shard specs "
        "and write trajectories into shared-memory buffers; no live "
        "models or per-sample arrays cross the process boundary by "
        "pickle (only the tiny per-core counter totals do)",
    ]
    result.data = {
        "equivalence": equivalence_rows,
        "workers": workers,
        "single_seconds": single_seconds,
        "sharded_seconds": sharded_seconds,
        "speedup": speedup,
        "equal_lanes": equal,
        "n_cores": n_cores,
        "samples": len(h),
    }
    return result
