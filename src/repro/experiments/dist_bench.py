"""EXP-B8: multi-host dispatch against in-process execution.

The scale-out question PR 9 exists to answer: what does moving a shard
across a socket *cost*, and when does a fleet of worker agents pay it
back?  Everything is measured on one machine — a localhost fleet of
two in-process :class:`~repro.dist.worker.WorkerAgent`\\ s — so the
numbers isolate the wire protocol's own overhead (pickling, both
socket directions, block reassembly) from real network latency:

* **single vs pooled vs dispatched** — the same workload through the
  in-process :func:`~repro.batch.sweep.run_batch_series`, the local
  sharded pool, and :func:`~repro.dist.dispatch.run_distributed` over
  the localhost fleet;
* **chunk-size sweep** — the dispatched run at a ladder of
  ``chunk_lanes`` values, recording wall time *and* the dispatcher's
  peak resident result-buffer bytes (:class:`~repro.parallel.blocks.
  BlockBudget` high-water mark): the memory/latency trade the streamed
  lane blocks buy;
* **link overhead** — the measured echo round-trip per agent
  (:func:`~repro.dist.probe.probe_link_overhead`), the number the
  planner's ``link_overhead_s`` pricing axis consumes.

Correctness rides along: every dispatched configuration must reproduce
the single-process result bitwise — dispatch is a transport, never a
numerics change.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backend import resolve_backend
from repro.batch.sweep import run_batch_series
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.models.registry import list_families
from repro.parallel import available_cpus, resolve_workers, run_sharded
from repro.parallel.executor import prepare_job
from repro.parallel.spec import DriveSpec, EnsembleSpec

EXPERIMENT_ID = "EXP-B8"
TITLE = "Multi-host dispatch: wire overhead and streamed lane blocks"


def _timed(fn, repeats: int = 1):
    """Best-of-repeats wall time plus the last return value."""
    best, value = float("inf"), None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _bitwise(reference, other) -> bool:
    return bool(
        np.array_equal(reference.m, other.m, equal_nan=True)
        and np.array_equal(reference.b, other.b, equal_nan=True)
        and np.array_equal(reference.updated, other.updated)
    )


@register(EXPERIMENT_ID, TITLE)
def run(
    n_cores: int = 64,
    driver_step_ratio: float = 0.04,
    repeats: int = 3,
    seed: int = 2006,
    scenario: str = "major-loop",
    n_agents: int = 2,
    chunk_ladder: tuple = (None, 16, 4, 1),
) -> ExperimentResult:
    """Measure localhost dispatch overhead and the chunk-size trade.

    ``n_agents`` worker agents serve the fleet; the dispatched shard
    count matches so every agent computes.  ``chunk_ladder`` lists the
    ``chunk_lanes`` values the streamed sweep visits (``None``: one
    unchunked block per shard).
    """
    from repro.dist import WorkerAgent, probe_link_overhead, run_distributed
    from repro.dist.dispatch import Dispatcher

    family = list_families()[0]
    spec = EnsembleSpec(family=family.name, n_cores=n_cores, seed=seed)
    h_max = float(family.h_scale)
    step = float(h_max * driver_step_ratio)
    drive = DriveSpec(scenario=scenario, h_max=h_max, driver_step=step)
    workers = resolve_workers(min(n_agents, available_cpus()))

    # -- the in-process references -------------------------------------
    single_seconds, single = _timed(
        lambda: run_batch_series(
            spec.build_batch(), drive.full_samples(n_cores)
        ),
        repeats,
    )
    pooled_seconds, pooled = _timed(
        lambda: run_sharded(
            spec,
            scenario=scenario,
            h_max=h_max,
            driver_step=step,
            n_workers=workers,
        ),
        repeats,
    )

    agents = [WorkerAgent().start() for _ in range(n_agents)]
    try:
        hosts = [agent.address for agent in agents]

        # -- link overhead: the planner's pricing input ----------------
        link_overheads = {
            address: probe_link_overhead(address, repeats=repeats)
            for address in hosts
        }

        # -- dispatched, unchunked -------------------------------------
        dispatched_seconds, dispatched = _timed(
            lambda: run_distributed(
                spec,
                scenario=scenario,
                h_max=h_max,
                driver_step=step,
                hosts=hosts,
                n_workers=n_agents,
            ),
            repeats,
        )

        # -- chunk-size sweep over one shared fleet --------------------
        chunk_rows: list[dict] = []
        for chunk_lanes in chunk_ladder:
            if chunk_lanes is not None and chunk_lanes >= n_cores:
                continue
            with Dispatcher(hosts) as dispatcher:
                job = prepare_job(
                    spec, drive, n_agents, 1, chunk_lanes=chunk_lanes
                )
                seconds, results = _timed(
                    lambda: dispatcher.run_jobs([job])
                )
                chunk_rows.append(
                    {
                        "op": f"dispatch_chunk_{chunk_lanes or 'none'}",
                        "n": n_cores,
                        "chunk_lanes": chunk_lanes,
                        "seconds": seconds,
                        "peak_bytes": dispatcher.budget.peak,
                        "bitwise": _bitwise(single, results[0]),
                    }
                )
    finally:
        for agent in agents:
            agent.stop()

    dispatch_overhead = dispatched_seconds - pooled_seconds
    median_link = sorted(link_overheads.values())[len(link_overheads) // 2]
    rows = [
        {"op": "single", "n": n_cores, "seconds": single_seconds},
        {"op": "pooled", "n": n_cores, "seconds": pooled_seconds},
        {"op": "dispatched", "n": n_cores, "seconds": dispatched_seconds},
        {"op": "link_probe", "n": n_agents, "seconds": median_link},
    ] + [
        {key: row[key] for key in ("op", "n", "seconds")}
        for row in chunk_rows
    ]

    table = TextTable(
        ["operation", "chunk", "seconds", "peak MiB", "bitwise"],
        title=(
            f"localhost dispatch over {n_agents} worker agent(s), "
            f"N = {n_cores}, {available_cpus()} CPU(s)"
        ),
    )
    table.add_row("single", "-", single_seconds, "-", "ref")
    table.add_row("pooled", "-", pooled_seconds, "-",
                  "yes" if _bitwise(single, pooled) else "NO")
    table.add_row("dispatched", "-", dispatched_seconds, "-",
                  "yes" if _bitwise(single, dispatched) else "NO")
    for row in chunk_rows:
        table.add_row(
            row["op"],
            row["chunk_lanes"] or "none",
            row["seconds"],
            f"{row['peak_bytes'] / 2**20:.3f}",
            "yes" if row["bitwise"] else "NO",
        )

    result = ExperimentResult(experiment_id=EXPERIMENT_ID, title=TITLE)
    result.tables = [table]
    result.notes = [
        f"measured link overhead (echo round trip, localhost): "
        f"{median_link * 1e3:.3f} ms median over {n_agents} agent(s) — "
        "the planner's link_overhead_s pricing input",
        f"dispatch vs local pool: {dispatch_overhead:+.3f} s at "
        f"N = {n_cores} (localhost sockets isolate protocol cost; a "
        "real fleet trades this against remote cores)",
        "smaller chunk_lanes lowers the dispatcher's peak resident "
        "result-buffer bytes and adds per-block round trips — the "
        "memory/latency trade streamed lane blocks expose",
        "every dispatched configuration is bitwise equal to the "
        "single-process run — dispatch is a transport, never a "
        "numerics change",
    ]
    result.data = {
        "rows": rows,
        "n_cores": n_cores,
        "n_agents": n_agents,
        "workers": workers,
        "cpus": available_cpus(),
        "backend": resolve_backend(None).name,
        "single_seconds": single_seconds,
        "pooled_seconds": pooled_seconds,
        "dispatched_seconds": dispatched_seconds,
        "dispatch_overhead_seconds": dispatch_overhead,
        "link_overheads": link_overheads,
        "link_overhead_s": median_link,
        "chunk_rows": chunk_rows,
        "pooled_bitwise": _bitwise(single, pooled),
        "dispatched_bitwise": _bitwise(single, dispatched),
        "chunks_bitwise": all(row["bitwise"] for row in chunk_rows),
        "peak_monotone": all(
            earlier["peak_bytes"] >= later["peak_bytes"]
            for earlier, later in zip(chunk_rows, chunk_rows[1:])
        ),
    }
    return result
