"""EXP-B2: non-JA batch families — bitwise equivalence and throughput.

The EXP-B1 claim, extended to the families the protocol refactor made
batchable:

1. **exactness** — every :class:`~repro.batch.preisach.BatchPreisachModel`
   and :class:`~repro.batch.time_domain.BatchTimeDomainModel` lane
   reproduces the corresponding scalar model over the same driver
   samples *bitwise*;
2. **throughput** — one vectorised update per sample beats the scalar
   per-model Python loop (``benchmarks/test_bench_preisach.py`` asserts
   >= 5x at N = 64 for the relay tensor).

The Preisach ensemble is built by identifying one base model and
perturbing its relay weights per lane (cheap, heterogeneous, and keeps
the ``alpha >= beta`` validity by construction); the time-domain
ensemble runs unguarded on perturbed materials, so its frozen-lane
accounting is exercised too.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.time_domain import TimeDomainJAModel
from repro.batch.preisach import BatchPreisachModel
from repro.batch.sweep import run_batch_series
from repro.batch.time_domain import BatchTimeDomainModel
from repro.core.slope import SlopeGuards
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.ja.parameters import PAPER_PARAMETERS
from repro.models.registry import perturbed_parameters
from repro.preisach.identification import identify_from_ja
from repro.preisach.model import PreisachModel
from repro.scenarios import scenario_samples


def make_preisach_ensemble(
    n_cores: int,
    n_cells: int = 24,
    h_sat: float = 20e3,
    identification_dhmax: float = 200.0,
    seed: int = 2006,
) -> list[PreisachModel]:
    """N heterogeneous Preisach cores sharing one identified grid.

    One Everett identification, then per-lane log-uniform weight
    perturbations (±30%): non-negativity and the half-plane constraint
    survive multiplication by positive factors, so every lane stays a
    valid relay model while the ensemble is genuinely heterogeneous.
    """
    base, _ = identify_from_ja(
        PAPER_PARAMETERS,
        n_cells=n_cells,
        h_sat=h_sat,
        dhmax=identification_dhmax,
    )
    rng = np.random.default_rng(seed)
    models = []
    for _ in range(n_cores):
        factors = np.exp(rng.uniform(np.log(0.7), np.log(1.3), base.weights.shape))
        models.append(
            PreisachModel(
                weights=base.weights * factors,
                alpha_thresholds=base.alpha_thresholds,
                beta_thresholds=base.beta_thresholds,
                m_sat=base.m_sat * float(rng.uniform(0.8, 1.2)),
            )
        )
    return models


def make_time_domain_ensemble(
    n_cores: int, seed: int = 2006
) -> list[TimeDomainJAModel]:
    """N unguarded time-domain lanes over perturbed materials."""
    return [
        TimeDomainJAModel(p, guards=SlopeGuards.none())
        for p in perturbed_parameters(n_cores, seed)
    ]


def make_drive(h_max: float, driver_step: float) -> np.ndarray:
    """The shared benchmark drive: the minor-loop-ladder scenario."""
    return scenario_samples("minor-loop-ladder", h_max, driver_step)


def run_scalar_ensemble(models, h: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The per-model Python loop the batch engines replace (reference)."""
    samples = len(h)
    n = len(models)
    m_out = np.empty((samples, n))
    b_out = np.empty((samples, n))
    for i, model in enumerate(models):
        model.reset()
        for s in range(samples):
            b_out[s, i] = model.apply_field(float(h[s]))
            m_out[s, i] = model.m
    return m_out, b_out


def _family_row(label, batch, scalars, h):
    """Time batch vs scalar over ``h``; count bitwise-equal lanes."""
    start = time.perf_counter()
    result = run_batch_series(batch, h)
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    m_scalar, b_scalar = run_scalar_ensemble(scalars, h)
    scalar_seconds = time.perf_counter() - start

    equal_lanes = int(
        np.sum(
            np.all(
                (result.b == b_scalar)
                | (np.isnan(result.b) & np.isnan(b_scalar)),
                axis=0,
            )
            & np.all(
                (result.m == m_scalar)
                | (np.isnan(result.m) & np.isnan(m_scalar)),
                axis=0,
            )
        )
    )
    speedup = scalar_seconds / max(batch_seconds, 1e-12)
    return {
        "label": label,
        "batch_seconds": batch_seconds,
        "scalar_seconds": scalar_seconds,
        "speedup": speedup,
        "equal_lanes": equal_lanes,
        "n_cores": batch.n_cores,
        "samples": len(h),
        "result": result,
    }


@register("EXP-B2", "Batch families: non-JA bitwise equivalence and throughput")
def run(
    n_cores: int = 64,
    n_cells: int = 24,
    h_max: float = 10e3,
    driver_step: float = 100.0,
    seed: int = 2006,
) -> ExperimentResult:
    h = make_drive(h_max, driver_step)

    preisach_models = make_preisach_ensemble(n_cores, n_cells=n_cells, seed=seed)
    rows = [
        _family_row(
            "preisach",
            BatchPreisachModel.from_scalar_models(preisach_models),
            preisach_models,
            h,
        ),
        _family_row(
            "time-domain",
            BatchTimeDomainModel.from_scalar_models(
                make_time_domain_ensemble(n_cores, seed=seed)
            ),
            make_time_domain_ensemble(n_cores, seed=seed),
            h,
        ),
    ]

    table = TextTable(
        [
            "family",
            "batch [s]",
            "scalar loop [s]",
            "speedup",
            "core-steps / s",
            "bitwise-equal lanes",
        ],
        title=(
            f"{n_cores} cores x {len(h)} samples "
            f"(minor-loop-ladder drive, step {driver_step:g} A/m)"
        ),
    )
    for row in rows:
        core_steps = row["n_cores"] * row["samples"]
        table.add_row(
            row["label"],
            row["batch_seconds"],
            row["scalar_seconds"],
            f"{row['speedup']:.1f}x",
            core_steps / max(row["batch_seconds"], 1e-12),
            f"{row['equal_lanes']}/{row['n_cores']}",
        )

    result = ExperimentResult(
        experiment_id="EXP-B2",
        title="Batch families: non-JA bitwise equivalence and throughput",
    )
    result.tables = [table]
    result.notes = [
        "equivalence is bitwise (NaN-aware for deliberately unguarded "
        "time-domain lanes), the same standard as EXP-B1's timeless "
        "engine — the batch models are the scalar models, amortised",
        "the Preisach relay tensor switches all cores in one masked "
        "NumPy update per sample; the time-domain lanes share one "
        "vectorised guarded-slope evaluation",
    ]
    result.data = {row["label"]: row for row in rows}
    return result
