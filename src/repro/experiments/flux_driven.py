"""EXP-X2: flux-driven (inverse) model — magnetising current waveform.

A transformer fed from a stiff sinusoidal voltage has its flux imposed
(``B = V/(omega*N*A) * -cos``); the winding draws whatever magnetising
current the core demands.  The inverse timeless model answers exactly
that question, and the classic result is the sharply peaked, distorted
magnetising current whose H(B=0) crossings sit at +/-Hc.

Checks: the recovered field round-trips through the forward model, the
crest factor of the equivalent current is far above a sine's, and the
B(H) trajectory of the inverse run retraces the forward model's loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.inverse import FluxDrivenJAModel
from repro.core.model import TimelessJAModel
from repro.core.sweep import run_sweep
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.ja.parameters import PAPER_PARAMETERS
from repro.waveforms.sweeps import major_loop_waypoints


@register("EXP-X2", "Flux-driven (inverse) model: magnetising current")
def run(
    b_peak: float = 1.2,
    cycles: int = 2,
    samples_per_cycle: int = 250,
    dbmax: float = 0.005,
    dhmax: float = 25.0,
) -> ExperimentResult:
    inverse = FluxDrivenJAModel(PAPER_PARAMETERS, dbmax=dbmax, dhmax=dhmax)
    phases = np.linspace(0.0, 2.0 * np.pi * cycles, samples_per_cycle * cycles)
    b_imposed = b_peak * np.sin(phases)
    h_recovered = inverse.apply_flux_series(b_imposed)

    # Round trip: drive a fresh forward model with the recovered field.
    forward = TimelessJAModel(PAPER_PARAMETERS, dhmax=dhmax, accept_equal=True)
    b_round = forward.apply_field_series(h_recovered)
    round_trip_error = float(np.max(np.abs(b_round - b_imposed)))

    # Settled cycle (the last one).
    tail = slice(-samples_per_cycle, None)
    h_cycle = h_recovered[tail]
    b_cycle = b_imposed[tail]
    h_peak = float(np.max(np.abs(h_cycle)))
    h_rms = float(np.sqrt(np.mean(h_cycle**2)))
    crest = h_peak / h_rms if h_rms > 0 else float("nan")

    # H at the B zero crossings of the settled cycle ~ +/-Hc.
    signs = np.sign(b_cycle)
    crossing_idx = np.where(np.diff(signs) != 0)[0]
    h_at_crossings = h_cycle[crossing_idx]

    # Compare the inverse trajectory's B(H) loop against the forward
    # model's loop at matching field amplitude.
    fwd_model = TimelessJAModel(PAPER_PARAMETERS, dhmax=dhmax)
    fwd_sweep = run_sweep(fwd_model, major_loop_waypoints(h_peak, cycles=2))

    table = TextTable(["quantity", "value"], title="Flux-driven run")
    table.add_row("imposed B peak [T]", b_peak)
    table.add_row("recovered H peak [A/m]", h_peak)
    table.add_row("H crest factor (sine = 1.414)", crest)
    table.add_row(
        "mean |H| at B=0 crossings [A/m]",
        float(np.mean(np.abs(h_at_crossings))),
    )
    table.add_row("forward round-trip max |dB| [T]", round_trip_error)
    table.add_row("round-trip error / dbmax", round_trip_error / dbmax)
    table.add_row("march solves", inverse.solves)
    table.add_row("march iterations", inverse.solve_iterations)

    result = ExperimentResult(
        experiment_id="EXP-X2",
        title="Flux-driven (inverse) model: magnetising current",
    )
    result.tables = [table]
    result.notes = [
        "the inverse problem of the paper's model: impose B (a "
        "voltage-fed winding), recover H (the magnetising current)",
        "expected shape: crest factor well above sqrt(2); |H| at the "
        "B=0 crossings ~ Hc (~3.3 kA/m); round trip within a few dbmax",
    ]
    result.data = {
        "b_imposed": b_imposed,
        "h_recovered": h_recovered,
        "round_trip_error": round_trip_error,
        "crest_factor": crest,
        "h_at_crossings": h_at_crossings,
        "forward_sweep": fwd_sweep,
    }
    return result
