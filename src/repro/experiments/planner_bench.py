"""EXP-B6: the calibrated autoscheduler against hand-picked plans.

PR 5's benchmarks showed the execution knobs' crossovers are workload-
and host-dependent: one fused numba process beats a numpy pool on some
family × size cells and loses badly on others.  This experiment closes
the loop — it races ``plan="auto"`` (the cost-model choice of
:mod:`repro.sched`) against the full set of *hand-picked* plans a
careful user could write, on every family × ensemble-size cell:

* ``numpy single`` — one vectorised process (the bitwise reference);
* ``numpy sharded xK`` — K fused numpy workers (hosts with > 1 CPU);
* ``numba single`` — one compiled process (when numba is registered);
* ``numba threaded xT`` — one process, T prange lane threads (when
  numba is registered and the host can pin > 1 thread).

Every plan runs through the **same** entry point
(``run_sharded(..., plan=...)``), so what is measured is exactly what a
caller gets.  Per cell the table reports each plan's best-of-repeats
wall time, the auto plan's choice and its ratio to the best hand plan
(the acceptance bar: within 1.2x everywhere), and the cell's spread
(worst/best — the cost of guessing wrong, >= 2x somewhere on real
hosts).  Correctness rides along: exact-backend plans must reassemble
bitwise against the reference; JIT plans hold the backend's rtol tier.

``benchmarks/test_bench_planner.py`` asserts the two acceptance bars at
benchmark sizes (skipping hosts with < 4 real cores, where there is no
meaningful plan space); the tier-1 smoke test runs a tiny geometry and
checks structure and correctness only — single-CPU CI timing is noise.
"""

from __future__ import annotations

import time

from repro.backend import (
    get_backend,
    has_threading,
    list_backends,
    max_threads,
)
from repro.experiments.backend_fused import (
    bitwise_equal_lanes,
    max_relative_deviation,
)
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.models.registry import list_families
from repro.parallel import available_cpus, resolve_workers, run_sharded
from repro.parallel.spec import EnsembleSpec
from repro.scenarios import scenario_samples
from repro.sched import ExecutionPlan, plan_for, run_calibration

EXPERIMENT_ID = "EXP-B6"
TITLE = "Calibrated autoscheduler: auto plans vs hand-picked plans"


def hand_plans() -> "dict[str, ExecutionPlan]":
    """The hand-picked plan set a careful user could write on this
    host: the extreme points of the candidate space the planner
    searches.  Keyed by a stable label for the results table."""
    plans = {"numpy single": ExecutionPlan(backend="numpy", n_workers=1)}
    workers = resolve_workers(None)
    if workers > 1:
        plans[f"numpy sharded x{workers}"] = ExecutionPlan(
            backend="numpy", n_workers=workers
        )
    if any(backend.name == "numba" for backend in list_backends()):
        plans["numba single"] = ExecutionPlan(backend="numba", n_workers=1)
        threads = min(available_cpus(), max_threads())
        if has_threading() and threads > 1:
            plans[f"numba threaded x{threads}"] = ExecutionPlan(
                backend="numba", n_workers=1, threads_per_worker=threads
            )
    return plans


def _shape(plan: ExecutionPlan) -> tuple:
    return (plan.backend, plan.n_workers, plan.threads_per_worker)


def _timed_run(spec: EnsembleSpec, h, plan: ExecutionPlan, repeats: int):
    """Best-of-repeats wall time of ``run_sharded(spec, h, plan=plan)``
    (one untimed warm-up on JIT backends), plus the last result."""
    if not get_backend(plan.backend).exact:
        run_sharded(spec, h, plan=plan)  # JIT warm-up, untimed
    best, result = float("inf"), None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = run_sharded(spec, h, plan=plan)
        best = min(best, time.perf_counter() - start)
    return best, result


@register(EXPERIMENT_ID, TITLE)
def run(
    sizes: tuple = (32, 256),
    driver_step_ratio: float = 0.04,
    repeats: int = 2,
    seed: int = 2006,
    probe_lanes: tuple = (4, 16, 64),
    probe_samples: tuple = (64, 256),
    probe_repeats: int = 1,
) -> ExperimentResult:
    """Race every hand plan and the auto plan on each family × size.

    ``driver_step_ratio`` scales each family's ladder drive step as a
    fraction of its ``h_scale`` (same sample count across families);
    the ``probe_*`` knobs set the in-process calibration budget, so the
    tier-1 smoke run can shrink everything.
    """
    calibration = run_calibration(
        lanes=probe_lanes, samples=probe_samples, repeats=probe_repeats
    )
    plans = hand_plans()

    rows: list[dict] = []
    cells: dict = {}
    for family in list_families():
        step = family.h_scale * driver_step_ratio
        h = scenario_samples("minor-loop-ladder", family.h_scale, step)
        for n_cores in sizes:
            spec = EnsembleSpec(family=family.name, n_cores=n_cores, seed=seed)
            reference = None
            measured: dict[tuple, tuple] = {}
            for label, plan in plans.items():
                seconds, result = _timed_run(spec, h, plan, repeats)
                measured[_shape(plan)] = (label, seconds)
                backend = get_backend(plan.backend)
                if label == "numpy single":
                    reference = result
                if backend.exact:
                    equivalence = (
                        "bitwise "
                        f"{bitwise_equal_lanes(reference, result)}/{n_cores}"
                    )
                    exact_ok = (
                        bitwise_equal_lanes(reference, result) == n_cores
                    )
                else:
                    deviation = max_relative_deviation(reference, result)
                    exact_ok = deviation <= backend.rtol
                    equivalence = (
                        f"max rel dev {deviation:.2e} "
                        f"({'within' if exact_ok else 'OUTSIDE'} "
                        f"rtol {backend.rtol:g})"
                    )
                rows.append(
                    {
                        "family": family.name,
                        "n_cores": n_cores,
                        "plan": label,
                        "backend": plan.backend,
                        "workers": plan.n_workers,
                        "threads": plan.threads_per_worker,
                        "seconds": seconds,
                        "equivalence": equivalence,
                        "equivalence_ok": bool(exact_ok),
                        "auto": False,
                    }
                )

            auto_plan = plan_for(
                spec, samples=len(h), calibration=calibration
            )
            if _shape(auto_plan) in measured:
                picked_label, auto_seconds = measured[_shape(auto_plan)]
            else:
                picked_label = auto_plan.describe()
                auto_seconds, _ = _timed_run(spec, h, auto_plan, repeats)

            hand_seconds = {
                label: seconds for label, seconds in measured.values()
            }
            best_label = min(hand_seconds, key=hand_seconds.get)
            worst_label = max(hand_seconds, key=hand_seconds.get)
            best = hand_seconds[best_label]
            worst = hand_seconds[worst_label]
            cells[(family.name, n_cores)] = {
                "auto_picked": picked_label,
                "auto_seconds": auto_seconds,
                "best_plan": best_label,
                "best_seconds": best,
                "worst_plan": worst_label,
                "worst_seconds": worst,
                "auto_vs_best": auto_seconds / max(best, 1e-12),
                "spread": worst / max(best, 1e-12),
            }
            rows.append(
                {
                    "family": family.name,
                    "n_cores": n_cores,
                    "plan": f"auto -> {picked_label}",
                    "backend": auto_plan.backend,
                    "workers": auto_plan.n_workers,
                    "threads": auto_plan.threads_per_worker,
                    "seconds": auto_seconds,
                    "equivalence": (
                        f"{auto_seconds / max(best, 1e-12):.2f}x of best "
                        f"hand plan ({best_label})"
                    ),
                    "equivalence_ok": True,
                    "auto": True,
                }
            )

    table = TextTable(
        [
            "family",
            "cores",
            "plan",
            "backend",
            "workers",
            "threads",
            "seconds",
            "equivalence / vs best",
        ],
        title=(
            f"hand plans vs plan='auto', calibration "
            f"{calibration.calibration_id} "
            f"({len(calibration.probes)} probes), "
            f"{available_cpus()} CPU(s)"
        ),
    )
    for row in rows:
        table.add_row(
            row["family"],
            row["n_cores"],
            row["plan"],
            row["backend"],
            row["workers"],
            row["threads"],
            row["seconds"],
            row["equivalence"],
        )

    result = ExperimentResult(experiment_id=EXPERIMENT_ID, title=TITLE)
    result.tables = [table]
    worst_auto = max(cell["auto_vs_best"] for cell in cells.values())
    best_spread = max(cell["spread"] for cell in cells.values())
    result.notes = [
        f"calibration {calibration.calibration_id}: "
        f"{len(calibration.probes)} probes over backends "
        f"{', '.join(calibration.backends)}, pool base "
        f"{calibration.pool['base_seconds']:.3f} s + "
        f"{calibration.pool['per_worker_seconds']:.3f} s/worker",
        f"hand plan set: {', '.join(plans)} — the extreme points of the "
        "planner's candidate space, each run through "
        "run_sharded(..., plan=...)",
        f"worst auto-vs-best ratio across cells: {worst_auto:.2f}x "
        "(acceptance bar: <= 1.2x on benchmark hosts)",
        f"largest cell spread (worst/best hand plan): {best_spread:.2f}x "
        "— the cost of hand-picking wrong (>= 2x somewhere on multi-core "
        "hosts is what makes planning worth it)",
        "exact-backend plans reassemble bitwise against the numpy single "
        "reference; JIT plans hold the backend rtol tier (threading is "
        "lane-major: bitwise against the same backend's sequential run)",
    ]
    result.data = {
        "rows": rows,
        "cells": {
            f"{family}@{n_cores}": cell
            for (family, n_cores), cell in cells.items()
        },
        "sizes": list(sizes),
        "plans": list(plans),
        "calibration_id": calibration.calibration_id,
        "cpus": available_cpus(),
        "worst_auto_vs_best": worst_auto,
        "max_spread": best_spread,
        "backends": [b.name for b in list_backends()],
    }
    return result
