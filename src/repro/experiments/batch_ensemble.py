"""EXP-B1: batch-ensemble engine — scalar equivalence and throughput.

The enabling claim of the batch subsystem is twofold:

1. **exactness** — advancing N heterogeneous cores in lockstep through
   the pure step kernel reproduces N independent scalar
   :class:`~repro.core.model.TimelessJAModel` runs *bitwise* (not
   approximately: the same IEEE operations execute per lane);
2. **throughput** — one Python-level dispatch per sample amortised over
   N cores beats the per-model scalar loop by well over an order of
   magnitude at ensemble sizes the scaling roadmap cares about.

This experiment measures both on a heterogeneous ensemble:
per-core-perturbed material parameters, per-core ``dhmax``, mixed
``accept_equal`` and per-core waveforms (phase-shifted, amplitude-scaled
major loops).
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.stability import audit_trajectory_batch
from repro.batch import BatchTimelessModel, run_batch_series
from repro.constants import DEFAULT_DHMAX, FIG1_H_MAX
from repro.core.model import TimelessJAModel
from repro.core.sweep import waypoint_samples
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.ja.parameters import PAPER_PARAMETERS, JAParameters
from repro.waveforms.sweeps import major_loop_waypoints


def make_ensemble(
    n_cores: int,
    seed: int = 2006,
    dhmax_base: float = DEFAULT_DHMAX,
) -> tuple[list[JAParameters], np.ndarray, np.ndarray]:
    """A reproducible heterogeneous ensemble: params, dhmax, accept_equal.

    Material parameters are log-uniformly perturbed around the paper's
    set (±30% on ``k``/``a2``/``m_sat``, c in [0.05, 0.4]); ``dhmax``
    spans half to double the base quantum.
    """
    rng = np.random.default_rng(seed)

    def perturb(value: float, spread: float = 0.3) -> float:
        return float(value * np.exp(rng.uniform(np.log(1 - spread), np.log(1 + spread))))

    params = [
        PAPER_PARAMETERS.with_updates(
            k=perturb(PAPER_PARAMETERS.k),
            a2=perturb(PAPER_PARAMETERS.a2),
            m_sat=perturb(PAPER_PARAMETERS.m_sat),
            c=float(rng.uniform(0.05, 0.4)),
            name=f"ensemble-{i}",
        )
        for i in range(n_cores)
    ]
    dhmax = dhmax_base * rng.uniform(0.5, 2.0, size=n_cores)
    accept_equal = rng.random(n_cores) < 0.5
    return params, dhmax, accept_equal


def make_waveforms(
    n_cores: int,
    h_max: float = FIG1_H_MAX,
    driver_step: float = DEFAULT_DHMAX / 4.0,
    seed: int = 2006,
) -> np.ndarray:
    """Per-core waveforms: one shared major-loop schedule, scaled per core.

    All columns share the sample count (lockstep requires it); each core
    sees its own amplitude scale in [0.6, 1.0].
    """
    rng = np.random.default_rng(seed + 1)
    base = waypoint_samples(major_loop_waypoints(h_max, cycles=1), driver_step)
    scales = rng.uniform(0.6, 1.0, size=n_cores)
    return base[:, None] * scales[None, :]


def run_scalar_ensemble(
    params: list[JAParameters],
    dhmax: np.ndarray,
    accept_equal: np.ndarray,
    h: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """The per-model Python loop the batch engine replaces (reference)."""
    samples, n = h.shape
    b_out = np.empty((samples, n))
    m_out = np.empty((samples, n))
    for i in range(n):
        model = TimelessJAModel(
            params[i], dhmax=float(dhmax[i]), accept_equal=bool(accept_equal[i])
        )
        model.reset(h_initial=float(h[0, i]))
        step = model._integrator.step
        for s in range(samples):
            step(float(h[s, i]))
            m_out[s, i] = model.m
            b_out[s, i] = model.b
    return m_out, b_out


@register("EXP-B1", "Batch ensemble: bitwise scalar equivalence and throughput")
def run(
    n_cores: int = 64,
    h_max: float = FIG1_H_MAX,
    dhmax_base: float = DEFAULT_DHMAX,
    seed: int = 2006,
) -> ExperimentResult:
    params, dhmax, accept_equal = make_ensemble(
        n_cores, seed=seed, dhmax_base=dhmax_base
    )
    h = make_waveforms(n_cores, h_max=h_max, seed=seed)
    samples = h.shape[0]

    # -- batch engine --------------------------------------------------------
    batch = BatchTimelessModel(params, dhmax=dhmax, accept_equal=accept_equal)
    start = time.perf_counter()
    result = run_batch_series(batch, h)
    batch_seconds = time.perf_counter() - start

    # -- the scalar loop it replaces -----------------------------------------
    start = time.perf_counter()
    m_scalar, b_scalar = run_scalar_ensemble(params, dhmax, accept_equal, h)
    scalar_seconds = time.perf_counter() - start

    equal_lanes = int(
        np.sum(
            np.all(result.b == b_scalar, axis=0)
            & np.all(result.m == m_scalar, axis=0)
        )
    )
    max_delta_b = float(np.max(np.abs(result.b - b_scalar)))
    audits = audit_trajectory_batch(h, result.b)
    acceptable = int(sum(audit.acceptable() for audit in audits))
    core_steps = n_cores * samples
    speedup = scalar_seconds / max(batch_seconds, 1e-12)

    table = TextTable(
        ["engine", "wall time [s]", "core-steps / s", "bitwise-equal lanes"],
        title=(
            f"{n_cores} heterogeneous cores x {samples} samples "
            f"(dhmax in [{dhmax.min():.0f}, {dhmax.max():.0f}] A/m)"
        ),
    )
    table.add_row(
        "scalar loop", scalar_seconds, core_steps / max(scalar_seconds, 1e-12), "-"
    )
    table.add_row(
        "batch ensemble",
        batch_seconds,
        core_steps / max(batch_seconds, 1e-12),
        f"{equal_lanes}/{n_cores}",
    )

    result_obj = ExperimentResult(
        experiment_id="EXP-B1",
        title="Batch ensemble: bitwise scalar equivalence and throughput",
    )
    result_obj.tables = [table]
    result_obj.notes = [
        f"batch vs scalar speedup: {speedup:.1f}x at N = {n_cores}",
        f"max |B_batch - B_scalar| = {max_delta_b:.3e} T "
        "(0 = bitwise, by construction of the shared step kernel)",
        f"stability: {acceptable}/{n_cores} lanes acceptable under the "
        "EXP-T2 audit",
    ]
    result_obj.data = {
        "n_cores": n_cores,
        "samples": samples,
        "batch_seconds": batch_seconds,
        "scalar_seconds": scalar_seconds,
        "speedup": speedup,
        "equal_lanes": equal_lanes,
        "max_delta_b": max_delta_b,
        "audits": audits,
        "batch_result": result,
    }
    return result_obj
