"""Registry mapping experiment ids to runnable callables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ExperimentError
from repro.io.table import TextTable


@dataclass
class ExperimentResult:
    """Everything an experiment produced.

    Attributes
    ----------
    experiment_id:
        The DESIGN.md id (e.g. ``"EXP-F1"``).
    title:
        Human-readable description.
    tables:
        Rendered-on-demand text tables (the paper-facing numbers).
    notes:
        Free-form findings (one string per note).
    data:
        Raw arrays/values keyed by name, for tests and plotting.
    artifacts:
        Extra text artefacts (e.g. the ASCII figure) keyed by filename
        stem.
    """

    experiment_id: str
    title: str
    tables: list[TextTable] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    data: dict[str, object] = field(default_factory=dict)
    artifacts: dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        """Full text report."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        for note in self.notes:
            parts.append(f"note: {note}")
        for table in self.tables:
            parts.append("")
            parts.append(table.render())
        return "\n".join(parts)


@dataclass(frozen=True)
class Experiment:
    """A registered experiment."""

    experiment_id: str
    title: str
    runner: Callable[..., ExperimentResult]


_REGISTRY: dict[str, Experiment] = {}


def register(experiment_id: str, title: str):
    """Decorator registering an experiment runner under an id."""

    def decorate(fn: Callable[..., ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id, title=title, runner=fn
        )
        return fn

    return decorate


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        )


def list_experiments() -> list[Experiment]:
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    return get_experiment(experiment_id).runner(**kwargs)
