"""EXP-F1: regenerate Figure 1 (SystemC B-H simulation).

The published figure shows the B-H curve of the paper's parameters under
a triangular DC sweep whose envelope decays, producing one major loop
(reaching H = +/-10 kA/m) with nested, non-biased minor loops, B within
[-2, 2] T.  We run the SystemC-style implementation on the event kernel
and report the standard loop metrics alongside the raster plot.
"""

from __future__ import annotations

from repro.analysis.loops import extract_loops
from repro.analysis.metrics import loop_metrics
from repro.analysis.stability import audit_trajectory
from repro.constants import DEFAULT_DHMAX, FIG1_H_MAX
from repro.core.sweep import waypoint_samples
from repro.experiments.registry import ExperimentResult, register
from repro.hdl.systemc import run_systemc_sweep
from repro.io.ascii_plot import plot_bh
from repro.io.table import TextTable
from repro.ja.parameters import PAPER_PARAMETERS
from repro.waveforms.sweeps import fig1_waypoints


@register("EXP-F1", "Figure 1: SystemC B-H simulation with nested minor loops")
def run(
    dhmax: float = DEFAULT_DHMAX,
    h_max: float = FIG1_H_MAX,
    minor_loop_count: int = 4,
    driver_step: float | None = None,
) -> ExperimentResult:
    """Run the Figure 1 sweep and package plot + metrics."""
    if driver_step is None:
        driver_step = dhmax / 4.0
    waypoints = fig1_waypoints(h_max=h_max, minor_loop_count=minor_loop_count)
    samples = waypoint_samples(waypoints, driver_step)
    trace = run_systemc_sweep(PAPER_PARAMETERS, samples, dhmax=dhmax)

    audit = audit_trajectory(trace.h, trace.b)
    # The major loop is the first full cycle after initial magnetisation
    # (+Hmax -> -Hmax -> +Hmax); compute the metrics on it alone so the
    # minor loops' zero crossings do not pollute Hc/Br.
    major = extract_loops(trace.h, trace.b)[0]
    metrics = loop_metrics(major.h, major.b)

    table = TextTable(
        ["quantity", "paper (Fig. 1, read off)", "measured"],
        title="Figure 1 characteristics",
    )
    table.add_row("H sweep extent [A/m]", "+/-10000", f"+/-{h_max:g}")
    table.add_row("B axis extent [T]", "2 (axis)", f"{metrics.b_max:.3f} (curve tip)")
    table.add_row("nested non-biased minor loops", "visible (several)", minor_loop_count)
    table.add_row("coercivity Hc [A/m]", "~3000-4000 (plot)", f"{metrics.coercivity:.0f}")
    table.add_row("remanence Br [T]", "~1.2-1.4 (plot)", f"{metrics.remanence:.3f}")
    table.add_row("loop area [J/m^3]", "(not given)", f"{metrics.area:.0f}")

    stability_table = TextTable(
        ["check", "value"], title="Numerical reliability (paper: no failures)"
    )
    stability_table.add_row("samples", audit.samples)
    stability_table.add_row("non-finite samples", audit.non_finite_samples)
    stability_table.add_row("runaway samples", audit.runaway_samples)
    stability_table.add_row(
        "B-retrace depth [T] (event-lag wiggle)", audit.monotonicity_depth
    )
    stability_table.add_row(
        "per-event output resolution [T]", audit.max_step_change
    )
    stability_table.add_row(
        "acceptable (retrace within event resolution)", audit.acceptable()
    )

    figure = plot_bh(trace.h / 1000.0, trace.b, h_unit="kA/m")

    result = ExperimentResult(
        experiment_id="EXP-F1",
        title="Figure 1: SystemC B-H simulation with nested minor loops",
    )
    result.tables = [table, stability_table]
    result.notes = [
        f"dhmax = {dhmax} A/m, driver step = {driver_step} A/m, "
        f"{trace.euler_steps} Euler steps, {trace.delta_cycles} delta cycles",
        "shape check: curve saturates, loop is symmetric, minor loops nest "
        "inside the major loop",
    ]
    result.data = {
        "h": trace.h,
        "b": trace.b,
        "m": trace.m,
        "metrics": metrics,
        "audit": audit,
        "euler_steps": trace.euler_steps,
    }
    result.artifacts = {"fig1_ascii": figure}
    return result
