"""EXP-B7: the warm-pool service against one-shot execution.

PR 6's planner made one run cheap to configure; this experiment
measures what the *service layer* adds on top for the many-run shape
real campaigns have:

* **cold vs warm submission** — the same workload through one-shot
  ``run_sharded(..., n_workers=...)`` (a fresh pool per call, so every
  call re-pays the calibration's ``pool_base`` and, on JIT backends,
  per-worker kernel compilation) and through a live
  :class:`~repro.service.api.HysteresisService` (one pre-warmed pool,
  reused);
* **cache miss vs hit** — the first request for a digest computes and
  inserts; every repeat is served the frozen cached result, so the hit
  path costs a digest plus a dictionary lookup;
* **repeated grid** — the same scenario grid twice through
  ``run_scenario_grid(..., service=...)``: pass 1 computes every
  unique cell, pass 2 is served entirely from the cache.  The pass-2
  speedup is the headline number (``benchmarks/test_bench_service.py``
  asserts >= 5x on benchmark hosts).

Correctness rides along: the warm-pool result must be bitwise equal to
the cold one-shot result on the exact backend (the digest/caching
design leans on exactly this — PRs 3 and 6 pinned sharded and threaded
execution to the single-process reference, so any plan can serve any
hit).
"""

from __future__ import annotations

import time

import numpy as np

from repro.backend import list_backends, resolve_backend
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.models.registry import list_families
from repro.parallel import available_cpus, resolve_workers, run_sharded
from repro.parallel.grid import run_scenario_grid
from repro.parallel.spec import DriveSpec, EnsembleSpec

EXPERIMENT_ID = "EXP-B7"
TITLE = "Warm-pool service: submission latency and cache throughput"


def _timed(fn, repeats: int = 1):
    """Best-of-repeats wall time plus the last return value."""
    best, value = float("inf"), None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


@register(EXPERIMENT_ID, TITLE)
def run(
    n_cores: int = 64,
    driver_step_ratio: float = 0.04,
    repeats: int = 3,
    seed: int = 2006,
    scenario: str = "major-loop",
    grid_scenarios: tuple = ("major-loop", "harmonic"),
    grid_h_max_ratios: tuple = (1.0, 0.75, 0.5, 0.25),
    hit_requests: int = 32,
) -> ExperimentResult:
    """Measure submission latency and cache throughput.

    ``n_cores`` sizes both the single-request workload and every grid
    cell; the grid spans every registered family × ``grid_scenarios`` ×
    amplitude ladder.  The drive step (and the shared grid amplitudes)
    scale from the smallest registered ``h_scale`` so one absolute
    ladder suits every family.
    """
    from repro.service import HysteresisService

    workers = resolve_workers(None)
    families = list_families()
    base_scale = min(family.h_scale for family in families)
    step = float(base_scale * driver_step_ratio)
    family = families[0]
    spec = EnsembleSpec(family=family.name, n_cores=n_cores, seed=seed)
    drive = DriveSpec(
        scenario=scenario, h_max=float(family.h_scale), driver_step=step
    )

    # -- cold submissions: a fresh one-shot pool per call --------------
    cold_seconds, cold_result = _timed(
        lambda: run_sharded(
            spec,
            scenario=scenario,
            h_max=float(family.h_scale),
            driver_step=step,
            n_workers=workers,
        ),
        repeats,
    )

    rows: list[dict] = []
    with HysteresisService(workers) as service:
        # -- warm submissions: same workload, live pre-warmed pool -----
        # (the cache is cleared per repeat so every timing is a real
        # compute, not a hit)
        def warm():
            service.cache.clear()
            return service.run(spec, drive)

        warm_seconds, warm_result = _timed(warm, repeats)
        service.cache.clear()  # the miss timing must be a real miss
        miss_seconds, _ = _timed(lambda: service.run(spec, drive))

        # -- cache hits: every repeat after the first is served --------
        hit_total, _ = _timed(
            lambda: [service.run(spec, drive) for _ in range(hit_requests)]
        )
        hit_seconds = hit_total / hit_requests

        # -- the repeated grid ----------------------------------------
        grid_families = [f.name for f in families]
        h_values = [float(base_scale * r) for r in grid_h_max_ratios]

        def grid_pass():
            return run_scenario_grid(
                grid_families,
                list(grid_scenarios),
                h_values,
                n_cores,
                seed=seed,
                driver_step=step,
                service=service,
            )

        service.cache.clear()
        pass1_seconds, cells1 = _timed(grid_pass)
        pass2_seconds, cells2 = _timed(grid_pass)
        stats = service.cache.stats

    exact = resolve_backend(None).exact
    warm_matches_cold = bool(
        np.array_equal(warm_result.m, cold_result.m)
        and np.array_equal(warm_result.b, cold_result.b)
    )
    pass2_matches = all(
        np.array_equal(c1.result.m, c2.result.m)
        for c1, c2 in zip(cells1, cells2)
    )
    grid_cells = len(cells1)
    speedup = pass1_seconds / max(pass2_seconds, 1e-12)

    rows = [
        {"op": "cold_submit", "n": n_cores, "seconds": cold_seconds},
        {"op": "warm_submit", "n": n_cores, "seconds": warm_seconds},
        {"op": "cache_miss", "n": n_cores, "seconds": miss_seconds},
        {"op": "cache_hit", "n": n_cores, "seconds": hit_seconds},
        {"op": "grid_pass1", "n": grid_cells, "seconds": pass1_seconds},
        {"op": "grid_pass2", "n": grid_cells, "seconds": pass2_seconds},
    ]
    table = TextTable(
        ["operation", "n", "seconds", "note"],
        title=(
            f"warm-pool service vs one-shot execution, "
            f"{workers} worker(s), {available_cpus()} CPU(s)"
        ),
    )
    notes_per_op = {
        "cold_submit": "one-shot run_sharded: fresh pool per call",
        "warm_submit": "HysteresisService.run: live pool, cache cleared",
        "cache_miss": "first request for a digest (compute + insert)",
        "cache_hit": f"per request, {hit_requests} repeats",
        "grid_pass1": "run_scenario_grid(service=...), cold cache",
        "grid_pass2": f"same grid again, all hits ({speedup:.1f}x)",
    }
    for row in rows:
        table.add_row(
            row["op"], row["n"], row["seconds"], notes_per_op[row["op"]]
        )

    result = ExperimentResult(experiment_id=EXPERIMENT_ID, title=TITLE)
    result.tables = [table]
    result.notes = [
        f"cold/warm submission ratio: {cold_seconds / max(warm_seconds, 1e-12):.2f}x "
        "(the spin-up a persistent pool stops re-paying)",
        f"cache miss/hit ratio: {miss_seconds / max(hit_seconds, 1e-12):.1f}x "
        "(a hit is a digest plus a dictionary lookup)",
        f"repeated grid: pass 1 {pass1_seconds:.3f}s, pass 2 "
        f"{pass2_seconds:.3f}s — {speedup:.1f}x (acceptance bar: >= 5x "
        "on benchmark hosts)",
        "warm-pool result "
        + ("bitwise equal" if warm_matches_cold else "NOT EQUAL")
        + " to the cold one-shot result"
        + ("" if exact else " (JIT backend: rtol tier applies)"),
        "cache keys cover (family, n_cores, seed, backend, drive) — "
        "never pool width or threads: PRs 3/6 pinned every execution "
        "shape to the same bits, so any plan serves any hit",
    ]
    result.data = {
        "rows": rows,
        "workers": workers,
        "cpus": available_cpus(),
        "backends": [b.name for b in list_backends()],
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "submit_ratio": cold_seconds / max(warm_seconds, 1e-12),
        "miss_seconds": miss_seconds,
        "hit_seconds": hit_seconds,
        "hit_requests": hit_requests,
        "grid_cells": grid_cells,
        "grid_unique": stats["entries"],
        "pass1_seconds": pass1_seconds,
        "pass2_seconds": pass2_seconds,
        "grid_speedup": speedup,
        "warm_matches_cold": warm_matches_cold,
        "pass2_matches_pass1": bool(pass2_matches),
        "cache_stats": stats,
    }
    return result
