"""EXP-T4: minor loops of various sizes and positions.

The paper: "Our model is capable of producing minor loops with no
numerical difficulties for various minor loops sizes and in different
positions."  We sweep a grid of (bias, amplitude) minor loops, cycling
each several times after approaching from the demagnetised state, and
check:

* the trajectory stays finite and free of negative-slope excursions;
* per-cycle closure *shrinks* monotonically — biased minor loops of the
  JA model drift for a few cycles (accommodation, which is physics, not
  numerical difficulty) and must settle towards closure;
* every minor loop's field span stays inside the major loop's span and
  sufficiently-large loops stay inside its B envelope.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.loops import extract_loops, loop_closure_error, loop_contains
from repro.analysis.stability import audit_trajectory
from repro.constants import DEFAULT_DHMAX, FIG1_H_MAX
from repro.core.model import TimelessJAModel
from repro.core.sweep import run_sweep
from repro.experiments.registry import ExperimentResult, register
from repro.io.table import TextTable
from repro.ja.parameters import PAPER_PARAMETERS
from repro.waveforms.sweeps import (
    biased_minor_loop_waypoints,
    major_loop_waypoints,
)


@register("EXP-T4", "Minor loop robustness over sizes and positions")
def run(
    dhmax: float = DEFAULT_DHMAX,
    h_max: float = FIG1_H_MAX,
    amplitudes: Sequence[float] = (500.0, 1000.0, 2000.0, 4000.0, 8000.0),
    biases: Sequence[float] = (0.0, 2000.0, 4000.0, 6000.0),
    cycles: int = 10,
) -> ExperimentResult:
    # Reference major loop for containment checks.
    major_model = TimelessJAModel(PAPER_PARAMETERS, dhmax=dhmax)
    major_sweep = run_sweep(major_model, major_loop_waypoints(h_max, cycles=1))
    major = extract_loops(major_sweep.h, major_sweep.b)[0]

    table = TextTable(
        [
            "bias [A/m]",
            "amplitude [A/m]",
            "cycle-1 closure [T]",
            "final closure [T]",
            "drift decayed",
            "inside major",
            "acceptable",
        ],
        title=f"Minor-loop grid, {cycles} cycles each, dhmax={dhmax} A/m",
    )

    all_acceptable = True
    all_decayed = True
    grid_data = []
    for bias in biases:
        for amplitude in amplitudes:
            model = TimelessJAModel(PAPER_PARAMETERS, dhmax=dhmax)
            waypoints = biased_minor_loop_waypoints(
                bias, amplitude, cycles=cycles
            )
            sweep = run_sweep(model, waypoints)
            audit = audit_trajectory(sweep.h, sweep.b)
            loops = extract_loops(sweep.h, sweep.b)
            # Full cycles start after the approach branch; take every
            # second loop so each entry is one complete excursion that
            # starts at the loop's upper vertex.
            cycle_loops = loops[0::2]
            closures = [loop_closure_error(loop) for loop in cycle_loops]
            first_closure = closures[0]
            final_closure = closures[-1]
            decayed = final_closure <= first_closure * 1.01 + 1e-12
            inside = loop_contains(major, cycle_loops[-1], tolerance=1e-2)
            acceptable = audit.acceptable()
            all_acceptable = all_acceptable and acceptable
            all_decayed = all_decayed and decayed
            table.add_row(
                bias,
                amplitude,
                first_closure,
                final_closure,
                decayed,
                inside,
                acceptable,
            )
            grid_data.append(
                {
                    "bias": bias,
                    "amplitude": amplitude,
                    "closures": closures,
                    "decayed": decayed,
                    "inside_major": inside,
                    "audit": audit,
                }
            )

    result = ExperimentResult(
        experiment_id="EXP-T4",
        title="Minor loop robustness over sizes and positions",
    )
    result.tables = [table]
    result.notes = [
        "paper: 'minor loops with no numerical difficulties for various "
        "minor loops sizes and in different positions'",
        f"all grid points numerically acceptable: {all_acceptable}; "
        f"accommodation drift decays everywhere: {all_decayed}",
        "biased loops drift (accommodate) for a few cycles before "
        "closing - a known property of the JA model, distinct from "
        "numerical failure",
    ]
    result.data = {
        "grid": grid_data,
        "all_acceptable": all_acceptable,
        "all_decayed": all_decayed,
        "major_loop": major,
    }
    return result
