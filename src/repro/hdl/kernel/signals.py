"""Signals with SystemC evaluate/update semantics.

A ``Signal`` carries a current value and an optional pending next value.
Writes during the evaluate phase do not take effect until the scheduler's
update phase; only an actual value change fires the signal's
value-changed event, which wakes sensitive processes in the *next* delta
cycle.  This two-phase discipline is what makes the paper's three-process
hand-off (``core`` → ``hchanged`` → ``monitorH`` → ``trig`` →
``Integral``) deterministic regardless of process execution order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generic, TypeVar

from repro.errors import SignalError
from repro.hdl.kernel.events import Event

if TYPE_CHECKING:
    from repro.hdl.kernel.scheduler import Scheduler

T = TypeVar("T")

_NO_PENDING = object()


class Signal(Generic[T]):
    """A single-driver signal with delta-cycle update semantics."""

    def __init__(self, scheduler: "Scheduler", name: str, initial: T) -> None:
        self.scheduler = scheduler
        self.name = name
        self._current: T = initial
        self._pending: object = _NO_PENDING
        self.changed = Event(scheduler, f"{name}.changed")
        #: Number of committed value changes (diagnostics/tracing).
        self.change_count = 0

    def read(self) -> T:
        """Current (committed) value."""
        return self._current

    @property
    def value(self) -> T:
        return self._current

    def write(self, value: T) -> None:
        """Schedule ``value`` to become current at the next update phase.

        Writing the current value is legal and results in no event
        (SystemC's "no change, no delta" rule).  The last write in an
        evaluate phase wins.
        """
        self._pending = value
        self.scheduler._schedule_update(self)

    def _apply_update(self) -> bool:
        """Commit the pending write; return True when the value changed."""
        if self._pending is _NO_PENDING:
            return False
        pending = self._pending
        self._pending = _NO_PENDING
        if pending == self._current:
            return False
        self._current = pending  # type: ignore[assignment]
        self.change_count += 1
        return True

    def force(self, value: T) -> None:
        """Set the value outside simulation (initialisation only).

        Raises if called while the scheduler is mid-run, since that would
        bypass the update phase and break determinism.
        """
        if self.scheduler.running:
            raise SignalError(
                f"force() on {self.name!r} while the scheduler is running"
            )
        self._current = value
        self._pending = _NO_PENDING

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, value={self._current!r})"
