"""Signal tracing: record committed values over simulated time.

A :class:`Tracer` attaches a recording process to each traced signal so
every committed change lands in a :class:`Trace` (time/value arrays).
Analysis code consumes traces directly; :mod:`repro.io.vcd` can dump
them as a VCD file for external waveform viewers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hdl.kernel.scheduler import Scheduler
from repro.hdl.kernel.signals import Signal


@dataclass
class Trace:
    """Recorded history of one signal."""

    name: str
    times_fs: list[int] = field(default_factory=list)
    values: list = field(default_factory=list)

    def append(self, time_fs: int, value) -> None:
        self.times_fs.append(time_fs)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times_fs)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(times_seconds, values)`` as float arrays."""
        times = np.array(self.times_fs, dtype=float) * 1e-15
        return times, np.array(self.values, dtype=float)

    def final_value(self):
        if not self.values:
            return None
        return self.values[-1]


class Tracer:
    """Records committed value changes of selected signals."""

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler
        self.traces: dict[str, Trace] = {}

    def watch(self, signal: Signal, record_initial: bool = True) -> Trace:
        """Start tracing a signal; returns its (live) trace."""
        if signal.name in self.traces:
            return self.traces[signal.name]
        trace = Trace(signal.name)
        self.traces[signal.name] = trace
        if record_initial:
            trace.append(self.scheduler.now.femtoseconds, signal.read())

        def record() -> None:
            trace.append(self.scheduler.now.femtoseconds, signal.read())

        self.scheduler.process(
            f"tracer[{signal.name}]", record, sensitive_to=[signal]
        )
        return trace

    def watch_all(self, signals) -> list[Trace]:
        """Trace every signal in an iterable."""
        return [self.watch(signal) for signal in signals]

    def __getitem__(self, name: str) -> Trace:
        return self.traces[name]
