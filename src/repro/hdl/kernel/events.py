"""Kernel events and notification semantics.

An :class:`Event` is the primitive processes are sensitive to.  Three
notification flavours follow SystemC:

* ``notify()`` — *immediate*: sensitive processes become runnable in the
  **current** evaluate phase;
* ``notify_delta()`` — *delta*: runnable in the next delta cycle;
* ``notify_after(delay)`` — *timed*: runnable when simulated time
  reaches ``now + delay``.

Signals own an internal event fired automatically on value changes
(delta semantics); explicit events are for process-to-process triggering
such as the ``trig`` hand-off between ``monitorH`` and ``Integral``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SchedulingError
from repro.hdl.kernel.simtime import SimTime

if TYPE_CHECKING:
    from repro.hdl.kernel.process import Process
    from repro.hdl.kernel.scheduler import Scheduler


class Event:
    """A notifiable trigger with a static set of sensitive processes."""

    def __init__(self, scheduler: "Scheduler", name: str) -> None:
        self.scheduler = scheduler
        self.name = name
        self._sensitive: list["Process"] = []
        #: Pending timed notification (SystemC keeps at most one; an
        #: earlier notification cancels a later one).
        self._pending_time: SimTime | None = None

    def add_sensitive(self, process: "Process") -> None:
        """Register a process to run whenever this event fires."""
        if process not in self._sensitive:
            self._sensitive.append(process)

    def remove_sensitive(self, process: "Process") -> None:
        """Drop a process from the sensitivity list (dynamic waits)."""
        if process in self._sensitive:
            self._sensitive.remove(process)

    @property
    def sensitive_processes(self) -> tuple["Process", ...]:
        return tuple(self._sensitive)

    def notify(self) -> None:
        """Immediate notification (current evaluate phase)."""
        self.scheduler._notify_immediate(self)

    def notify_delta(self) -> None:
        """Delta notification (next delta cycle)."""
        self.scheduler._notify_delta(self)

    def notify_after(self, delay: SimTime) -> None:
        """Timed notification at ``now + delay``.

        Like SystemC, a pending timed notification is overridden only by
        an earlier one; a later notify is discarded.
        """
        if not isinstance(delay, SimTime):
            raise SchedulingError(
                f"notify_after expects a SimTime delay, got {delay!r}"
            )
        when = self.scheduler.now + delay
        if self._pending_time is not None and self._pending_time <= when:
            return
        self._pending_time = when
        self.scheduler._notify_timed(self, when)

    def _consume_timed(self) -> None:
        """Called by the scheduler when the timed notification fires."""
        self._pending_time = None

    def __repr__(self) -> str:
        return f"Event({self.name!r})"
