"""The discrete-event scheduler (evaluate / update / delta / advance).

One simulation step at a fixed simulated time is:

1. **evaluate** — run every runnable process to completion; writes to
   signals are buffered, immediate notifications extend the current
   runnable set;
2. **update** — commit buffered signal writes; each actual value change
   fires the signal's changed event with delta semantics;
3. if any process became runnable, start the next **delta cycle** at the
   same simulated time; otherwise **advance** time to the earliest timed
   notification.

A run ends when the event queue is empty, a time limit is hit, or the
delta-cycle limit trips (which would indicate a combinational loop —
surfaced as an error rather than a hang).
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.errors import KernelError, SchedulingError
from repro.hdl.kernel.events import Event
from repro.hdl.kernel.process import Process
from repro.hdl.kernel.signals import Signal
from repro.hdl.kernel.simtime import SimTime

#: Safety valve: more delta cycles than this at one time point means a
#: zero-delay feedback loop in the model.
DEFAULT_MAX_DELTAS = 10_000


class Scheduler:
    """Event-driven simulation kernel."""

    def __init__(self, max_deltas: int = DEFAULT_MAX_DELTAS) -> None:
        self.now = SimTime.ZERO
        self.max_deltas = max_deltas
        self.running = False
        #: Cumulative statistics.
        self.delta_count = 0
        self.process_runs = 0
        self.timepoints = 0

        self._runnable: list[Process] = []
        self._runnable_next_delta: list[Process] = []
        self._pending_updates: list[Signal] = []
        #: Timed queue of (time_fs, sequence, event).
        self._timed: list[tuple[int, int, Event]] = []
        self._sequence = 0
        self._initial: list[Process] = []

    # -- construction helpers ---------------------------------------------

    def signal(self, name: str, initial) -> Signal:
        """Create a signal owned by this scheduler."""
        return Signal(self, name, initial)

    def event(self, name: str) -> Event:
        """Create a free-standing event."""
        return Event(self, name)

    def process(
        self,
        name: str,
        body,
        sensitive_to: Iterable = (),
        initialise: bool = False,
    ) -> Process:
        """Create a process; ``initialise=True`` queues it for time zero."""
        return Process(
            self, name, body, sensitive_to=sensitive_to, initialise=initialise
        )

    # -- notification plumbing (called by Event/Signal) ---------------------

    def _queue_initial(self, process: Process) -> None:
        self._initial.append(process)

    def _queue_process(self, queue: list[Process], process: Process) -> None:
        if not process._queued:
            process._queued = True
            queue.append(process)

    def _notify_immediate(self, event: Event) -> None:
        if not self.running:
            raise SchedulingError(
                f"immediate notify of {event.name!r} outside simulation"
            )
        for process in event.sensitive_processes:
            self._queue_process(self._runnable, process)

    def _notify_delta(self, event: Event) -> None:
        for process in event.sensitive_processes:
            self._queue_process(self._runnable_next_delta, process)

    def _notify_timed(self, event: Event, when: SimTime) -> None:
        self._sequence += 1
        heapq.heappush(self._timed, (when.femtoseconds, self._sequence, event))

    def _schedule_update(self, signal: Signal) -> None:
        self._pending_updates.append(signal)

    # -- the core loops -----------------------------------------------------

    def _evaluate_and_update(self) -> None:
        """Run one delta cycle: evaluate runnable processes, then update."""
        self.delta_count += 1
        runnable = self._runnable
        # Immediate notifications may extend `runnable` while iterating.
        index = 0
        while index < len(runnable):
            process = runnable[index]
            process._queued = False
            self.process_runs += 1
            process.run()
            index += 1
        runnable.clear()

        updates = self._pending_updates
        self._pending_updates = []
        seen: set[int] = set()
        for signal in updates:
            if id(signal) in seen:
                continue
            seen.add(id(signal))
            if signal._apply_update():
                self._notify_delta(signal.changed)

        self._runnable, self._runnable_next_delta = (
            self._runnable_next_delta,
            self._runnable,
        )

    def _settle(self) -> None:
        """Exhaust delta cycles at the current time point."""
        deltas_here = 0
        while self._runnable:
            deltas_here += 1
            if deltas_here > self.max_deltas:
                raise KernelError(
                    f"more than {self.max_deltas} delta cycles at "
                    f"{self.now!r}: zero-delay feedback loop"
                )
            self._evaluate_and_update()

    def run(self, until: SimTime | None = None) -> SimTime:
        """Advance the simulation; return the final simulated time.

        Runs until the timed queue drains or simulated time would exceed
        ``until``.  Can be called repeatedly to continue.
        """
        if self.running:
            raise KernelError("scheduler re-entered (run() is not reentrant)")
        self.running = True
        try:
            if self._initial:
                for process in self._initial:
                    self._queue_process(self._runnable, process)
                self._initial.clear()
            self.timepoints += 1
            self._settle()
            while self._timed:
                when_fs, _, event = self._timed[0]
                when = SimTime(when_fs)
                if until is not None and until < when:
                    break
                heapq.heappop(self._timed)
                if event._pending_time is None or event._pending_time != when:
                    # Stale entry: already consumed, or superseded by an
                    # earlier notify_after.
                    continue
                self.now = when
                event._consume_timed()
                for process in event.sensitive_processes:
                    self._queue_process(self._runnable, process)
                # Collect any other events scheduled for the same instant.
                while self._timed and self._timed[0][0] == when_fs:
                    _, _, other = heapq.heappop(self._timed)
                    if other._pending_time == when:
                        other._consume_timed()
                        for process in other.sensitive_processes:
                            self._queue_process(self._runnable, process)
                self.timepoints += 1
                self._settle()
            if until is not None and (not self._timed):
                self.now = max(self.now, until)
        finally:
            self.running = False
        return self.now

    def pending_activity(self) -> bool:
        """True when timed notifications remain in the queue."""
        return bool(self._timed)

    def __repr__(self) -> str:
        return (
            f"Scheduler(now={self.now!r}, deltas={self.delta_count}, "
            f"runs={self.process_runs})"
        )
