"""Module base class: named containers of signals and processes."""

from __future__ import annotations

from typing import Iterable

from repro.hdl.kernel.events import Event
from repro.hdl.kernel.process import Process
from repro.hdl.kernel.scheduler import Scheduler
from repro.hdl.kernel.signals import Signal


class Module:
    """A named hardware module bound to a scheduler.

    Subclasses create their signals, events and processes in
    ``__init__`` via the ``make_*`` helpers, which prefix hierarchical
    names — the Python analogue of ``SC_MODULE`` and ``SC_CTOR``.
    """

    def __init__(self, scheduler: Scheduler, name: str) -> None:
        self.scheduler = scheduler
        self.name = name
        self._signals: list[Signal] = []
        self._processes: list[Process] = []
        self._events: list[Event] = []

    def make_signal(self, local_name: str, initial) -> Signal:
        signal = self.scheduler.signal(f"{self.name}.{local_name}", initial)
        self._signals.append(signal)
        return signal

    def make_event(self, local_name: str) -> Event:
        event = self.scheduler.event(f"{self.name}.{local_name}")
        self._events.append(event)
        return event

    def make_process(
        self,
        local_name: str,
        body,
        sensitive_to: Iterable = (),
        initialise: bool = False,
    ) -> Process:
        process = self.scheduler.process(
            f"{self.name}.{local_name}",
            body,
            sensitive_to=sensitive_to,
            initialise=initialise,
        )
        self._processes.append(process)
        return process

    @property
    def signals(self) -> tuple[Signal, ...]:
        return tuple(self._signals)

    @property
    def processes(self) -> tuple[Process, ...]:
        return tuple(self._processes)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"{len(self._processes)} processes, {len(self._signals)} signals)"
        )
