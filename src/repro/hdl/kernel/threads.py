"""Coroutine processes — the SC_THREAD execution style.

A thread process is written as a Python generator that *yields* what it
wants to wait for::

    def body():
        yield SimTime.ns(5)          # wait(5, SC_NS)
        sig.write(1)
        yield other_signal           # wait(other_signal.value_changed())
        yield done_event             # wait(done_event)

Between yields the code runs to completion inside the evaluate phase
exactly like an SC_METHOD; each yield suspends it and arms a *one-shot*
dynamic sensitivity on the yielded trigger (a ``SimTime`` delay, a
``Signal`` change, or an ``Event``).  Returning (or ``StopIteration``)
terminates the thread.

This is the second of SystemC's two process styles; the paper's model
only needs SC_METHODs, but testbench drivers read far more naturally as
threads (see ``ClockGenerator`` and the kernel tests).
"""

from __future__ import annotations

from typing import Callable, Generator, Union

from repro.errors import SchedulingError
from repro.hdl.kernel.events import Event
from repro.hdl.kernel.process import Process
from repro.hdl.kernel.scheduler import Scheduler
from repro.hdl.kernel.signals import Signal
from repro.hdl.kernel.simtime import SimTime

WaitTarget = Union[SimTime, Signal, Event]
ThreadBody = Callable[[], Generator[WaitTarget, None, None]]


class ThreadProcess:
    """A generator-based process with dynamic one-shot sensitivity."""

    def __init__(
        self,
        scheduler: Scheduler,
        name: str,
        body: ThreadBody,
    ) -> None:
        self.scheduler = scheduler
        self.name = name
        self._generator = body()
        self.done = False
        #: Number of resumptions (diagnostics).
        self.resume_count = 0
        self._timer = Event(scheduler, f"{name}.timer")
        self._waiting_on: Event | None = None
        self._driver = Process(
            scheduler, f"{name}.driver", self._resume, initialise=True
        )

    def _arm(self, target: WaitTarget) -> None:
        if isinstance(target, SimTime):
            self._waiting_on = self._timer
            self._timer.add_sensitive(self._driver)
            self._timer.notify_after(target)
        elif isinstance(target, Signal):
            self._waiting_on = target.changed
            target.changed.add_sensitive(self._driver)
        elif isinstance(target, Event):
            self._waiting_on = target
            target.add_sensitive(self._driver)
        else:
            raise SchedulingError(
                f"thread {self.name!r} yielded {target!r}; expected "
                f"SimTime, Signal or Event"
            )

    def _resume(self) -> None:
        if self.done:
            return
        if self._waiting_on is not None:
            self._waiting_on.remove_sensitive(self._driver)
            self._waiting_on = None
        self.resume_count += 1
        try:
            target = next(self._generator)
        except StopIteration:
            self.done = True
            return
        self._arm(target)

    def __repr__(self) -> str:
        return (
            f"ThreadProcess({self.name!r}, resumes={self.resume_count}, "
            f"done={self.done})"
        )


class ClockGenerator:
    """A free-running boolean clock signal (testbench utility).

    Parameters
    ----------
    scheduler:
        The kernel.
    name:
        Signal name prefix.
    period:
        Full clock period.
    duty:
        High fraction of the period (0 < duty < 1).
    cycles:
        Stop after this many full cycles; ``None`` would never let the
        event queue drain, so a bound is required.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        name: str,
        period: SimTime,
        duty: float = 0.5,
        cycles: int = 1000,
    ) -> None:
        if not period:
            raise SchedulingError("clock period must be non-zero")
        if not 0.0 < duty < 1.0:
            raise SchedulingError(f"duty must be in (0, 1), got {duty!r}")
        if cycles < 1:
            raise SchedulingError(f"cycles must be >= 1, got {cycles}")
        self.signal = scheduler.signal(f"{name}.clk", False)
        high_fs = max(1, round(period.femtoseconds * duty))
        low_fs = max(1, period.femtoseconds - high_fs)
        self.high_time = SimTime(high_fs)
        self.low_time = SimTime(low_fs)
        self.cycles = cycles

        def body():
            for _ in range(self.cycles):
                self.signal.write(True)
                yield self.high_time
                self.signal.write(False)
                yield self.low_time

        self.thread = ThreadProcess(scheduler, f"{name}.gen", body)
