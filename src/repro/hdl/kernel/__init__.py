"""Event-driven simulation kernel with SystemC semantics.

The kernel reproduces the discrete-event execution model the paper's
SystemC implementation relies on:

* **signals** with evaluate/update semantics — a write becomes visible
  only at the next delta cycle, and only a value *change* fires the
  signal's event;
* **processes** (SC_METHOD style) with static sensitivity, run to
  completion during the evaluate phase;
* **delta cycles** — zero-time iterations of evaluate/update until the
  system is quiescent, after which simulated time advances to the next
  timed notification.

The standard release of SystemC 2.01 "is adequate" for the paper's model
precisely because only this discrete machinery is needed: the analogue
solver is never involved.
"""

from repro.hdl.kernel.events import Event
from repro.hdl.kernel.module import Module
from repro.hdl.kernel.process import Process
from repro.hdl.kernel.scheduler import Scheduler
from repro.hdl.kernel.signals import Signal
from repro.hdl.kernel.simtime import SimTime
from repro.hdl.kernel.threads import ClockGenerator, ThreadProcess
from repro.hdl.kernel.tracing import Trace, Tracer

__all__ = [
    "ClockGenerator",
    "Event",
    "Module",
    "Process",
    "Scheduler",
    "Signal",
    "SimTime",
    "ThreadProcess",
    "Trace",
    "Tracer",
]
