"""Integer simulated time.

Simulated time is carried as an integer count of femtoseconds so that
event ordering is exact — float time would make delta-cycle boundaries
ambiguous after long runs.  :class:`SimTime` is an immutable value type
with arithmetic and unit constructors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import total_ordering

from repro.errors import SchedulingError

#: Femtoseconds per unit.
_UNITS = {
    "fs": 1,
    "ps": 10**3,
    "ns": 10**6,
    "us": 10**9,
    "ms": 10**12,
    "s": 10**15,
}


@total_ordering
@dataclass(frozen=True)
class SimTime:
    """Immutable simulated-time value (integer femtoseconds)."""

    femtoseconds: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.femtoseconds, int):
            raise SchedulingError(
                f"SimTime requires an integer femtosecond count, "
                f"got {self.femtoseconds!r}"
            )
        if self.femtoseconds < 0:
            raise SchedulingError(
                f"SimTime cannot be negative, got {self.femtoseconds}"
            )

    @classmethod
    def from_value(cls, value: float, unit: str) -> "SimTime":
        """Build from a value and unit string (fs/ps/ns/us/ms/s)."""
        try:
            scale = _UNITS[unit]
        except KeyError:
            known = ", ".join(_UNITS)
            raise SchedulingError(f"unknown time unit {unit!r}; known: {known}")
        if not math.isfinite(value) or value < 0:
            raise SchedulingError(f"time value must be finite and >= 0, got {value!r}")
        return cls(round(value * scale))

    @classmethod
    def fs(cls, value: float) -> "SimTime":
        return cls.from_value(value, "fs")

    @classmethod
    def ps(cls, value: float) -> "SimTime":
        return cls.from_value(value, "ps")

    @classmethod
    def ns(cls, value: float) -> "SimTime":
        return cls.from_value(value, "ns")

    @classmethod
    def us(cls, value: float) -> "SimTime":
        return cls.from_value(value, "us")

    @classmethod
    def ms(cls, value: float) -> "SimTime":
        return cls.from_value(value, "ms")

    @classmethod
    def seconds(cls, value: float) -> "SimTime":
        return cls.from_value(value, "s")

    def to_seconds(self) -> float:
        """Convert to float seconds (for analysis/plotting only)."""
        return self.femtoseconds / _UNITS["s"]

    def __add__(self, other: "SimTime") -> "SimTime":
        return SimTime(self.femtoseconds + other.femtoseconds)

    def __sub__(self, other: "SimTime") -> "SimTime":
        return SimTime(self.femtoseconds - other.femtoseconds)

    def __mul__(self, factor: int) -> "SimTime":
        if not isinstance(factor, int):
            raise SchedulingError(f"SimTime can only scale by an int, got {factor!r}")
        return SimTime(self.femtoseconds * factor)

    __rmul__ = __mul__

    def __lt__(self, other: "SimTime") -> bool:
        return self.femtoseconds < other.femtoseconds

    def __bool__(self) -> bool:
        return self.femtoseconds != 0

    def __repr__(self) -> str:
        for unit in ("s", "ms", "us", "ns", "ps"):
            scale = _UNITS[unit]
            if self.femtoseconds % scale == 0 and self.femtoseconds >= scale:
                return f"SimTime({self.femtoseconds // scale} {unit})"
        return f"SimTime({self.femtoseconds} fs)"


SimTime.ZERO = SimTime(0)
