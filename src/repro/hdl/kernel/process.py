"""Processes (SC_METHOD style) with static sensitivity."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Union

from repro.errors import SchedulingError
from repro.hdl.kernel.events import Event
from repro.hdl.kernel.signals import Signal

if TYPE_CHECKING:
    from repro.hdl.kernel.scheduler import Scheduler

Sensitivity = Union[Event, Signal]


class Process:
    """A run-to-completion callback triggered by events.

    Equivalent to a SystemC ``SC_METHOD``: the body is an ordinary
    function executed during the evaluate phase whenever any event in its
    sensitivity list fires.  The body must not block; state lives on the
    owning module.
    """

    def __init__(
        self,
        scheduler: "Scheduler",
        name: str,
        body: Callable[[], None],
        sensitive_to: Iterable[Sensitivity] = (),
        initialise: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.name = name
        self.body = body
        #: Number of times the body has run (diagnostics).
        self.run_count = 0
        self._queued = False
        for trigger in sensitive_to:
            self.add_sensitivity(trigger)
        if initialise:
            scheduler._queue_initial(self)

    def add_sensitivity(self, trigger: Sensitivity) -> None:
        """Extend the static sensitivity list."""
        if isinstance(trigger, Signal):
            trigger.changed.add_sensitive(self)
        elif isinstance(trigger, Event):
            trigger.add_sensitive(self)
        else:
            raise SchedulingError(
                f"process {self.name!r} cannot be sensitive to {trigger!r}"
            )

    def run(self) -> None:
        """Execute the body once (called by the scheduler)."""
        self.run_count += 1
        self.body()

    def __repr__(self) -> str:
        return f"Process({self.name!r}, runs={self.run_count})"
