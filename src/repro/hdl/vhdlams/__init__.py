"""VHDL-AMS-like mixed-signal substrate.

Models are *entities* made of:

* **quantities** — continuous unknowns solved by the analogue engine;
* **simultaneous equations** — residuals over quantity values and their
  ``'DOT`` (time-derivative) discretisations;
* **processes** — discrete callbacks that run after each accepted
  analogue step, may update shared "signal" state the equations read,
  and may issue a ``break`` (discontinuity notification) that restarts
  integration with a small backward-Euler step.

Two architectures of the JA core are provided on top:
:class:`TimelessJAArchitecture` (the paper's technique — the process
integrates dM/dH itself) and :class:`IntegJAArchitecture` (the
``'INTEG``/``'DOT`` time-domain formulation of the earlier VHDL-AMS
models the paper criticises).
"""

from repro.hdl.vhdlams.above import AboveDetector
from repro.hdl.vhdlams.ja_entity import TimelessJAArchitecture
from repro.hdl.vhdlams.ja_integ import IntegJAArchitecture
from repro.hdl.vhdlams.quantity import Quantity, QuantityReader
from repro.hdl.vhdlams.solver import (
    SolverOptions,
    SolverReport,
    TransientResult,
    TransientSolver,
)
from repro.hdl.vhdlams.system import AnalogProcess, AnalogSystem, Equation

__all__ = [
    "AboveDetector",
    "AnalogProcess",
    "AnalogSystem",
    "Equation",
    "IntegJAArchitecture",
    "Quantity",
    "QuantityReader",
    "SolverOptions",
    "SolverReport",
    "TimelessJAArchitecture",
    "TransientResult",
    "TransientSolver",
]
