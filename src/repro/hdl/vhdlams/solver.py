"""Transient analogue solver (the VHDL-AMS simulation engine).

Discretises every ``'DOT`` with trapezoidal (backward Euler on the first
step and after every break), solves the resulting algebraic system with
damped Newton at each candidate time point, and adapts the step from
Newton behaviour and a trapezoidal LTE estimate.  All pathologies are
*counted* in :class:`SolverReport` — the stability experiment's raw data:

* Newton non-convergence and step rejections;
* step-floor hits (the "timestep too small" failure mode);
* discontinuity breaks requested by processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.hdl.vhdlams.quantity import Quantity, QuantityReader
from repro.hdl.vhdlams.system import AnalogSystem, EquationContext
from repro.solver.adaptive import AdaptiveStepController
from repro.solver.newton import NewtonOptions, newton_solve


@dataclass(frozen=True)
class SolverOptions:
    """Transient analysis configuration."""

    dt_initial: float = 1e-6
    dt_min: float = 1e-12
    dt_max: float = 1e-3
    newton: NewtonOptions = NewtonOptions()
    lte_abstol: float = 1e-6
    lte_reltol: float = 1e-3
    #: Give up after this many consecutive rejected attempts at one point.
    max_consecutive_rejections: int = 60
    #: Use trapezoidal after the start-up backward Euler step.
    trapezoidal: bool = True


@dataclass
class SolverReport:
    """Failure/effort accounting for one transient run."""

    accepted_steps: int = 0
    rejected_steps: int = 0
    newton_failures: int = 0
    newton_iterations: int = 0
    floor_hits: int = 0
    breaks: int = 0
    gave_up: bool = False
    give_up_time: float | None = None

    @property
    def total_attempts(self) -> int:
        return self.accepted_steps + self.rejected_steps


@dataclass(frozen=True)
class TransientResult:
    """Trajectory of a transient run plus its report."""

    t: np.ndarray
    values: np.ndarray  # shape (n_points, n_quantities)
    quantities: tuple[Quantity, ...]
    report: SolverReport

    def of(self, quantity: Quantity) -> np.ndarray:
        """Column of one quantity."""
        return self.values[:, quantity.index]

    def __len__(self) -> int:
        return len(self.t)


class TransientSolver:
    """Runs a transient analysis of an :class:`AnalogSystem`."""

    def __init__(
        self, system: AnalogSystem, options: SolverOptions = SolverOptions()
    ) -> None:
        system.check_elaboration()
        self.system = system
        self.options = options

    def _residual_vector(
        self, time: float, x: np.ndarray, dots: np.ndarray
    ) -> np.ndarray:
        ctx = EquationContext(time, x, dots)
        out = np.empty(len(self.system.equations))
        for i, equation in enumerate(self.system.equations):
            out[i] = equation.residual(ctx)
        return out

    def run(self, t_stop: float, t_start: float = 0.0) -> TransientResult:
        """Integrate from ``t_start`` to ``t_stop``.

        Never raises on numerical trouble: a run that cannot proceed sets
        ``report.gave_up`` and returns the trajectory so far.
        """
        if not t_stop > t_start:
            raise SolverError(f"t_stop ({t_stop}) must exceed t_start ({t_start})")
        options = self.options
        system = self.system
        report = SolverReport()
        controller = AdaptiveStepController(
            dt_initial=options.dt_initial,
            dt_min=options.dt_min,
            dt_max=options.dt_max,
        )

        x_old = system.initial_state()
        xdot_old = np.zeros_like(x_old)
        use_be = True  # start-up (and post-break) rule
        lte_indices = np.array(system.differential_indices(), dtype=int)

        times = [t_start]
        states = [x_old.copy()]
        t_now = t_start
        consecutive_rejections = 0

        while t_now < t_stop - 1e-15 * max(1.0, abs(t_stop)):
            dt = min(controller.dt, t_stop - t_now)
            t_candidate = t_now + dt

            if use_be:
                def dots_of(x_new: np.ndarray) -> np.ndarray:
                    return (x_new - x_old) / dt
            else:
                def dots_of(x_new: np.ndarray) -> np.ndarray:
                    return 2.0 * (x_new - x_old) / dt - xdot_old

            def residual(x_new: np.ndarray) -> np.ndarray:
                return self._residual_vector(t_candidate, x_new, dots_of(x_new))

            result = newton_solve(residual, x_old, options=options.newton)
            report.newton_iterations += result.iterations

            if not result.converged:
                report.newton_failures += 1
                report.rejected_steps += 1
                decision = controller.after_newton_failure()
                if decision.at_floor:
                    report.floor_hits += 1
                consecutive_rejections += 1
                if consecutive_rejections > options.max_consecutive_rejections:
                    report.gave_up = True
                    report.give_up_time = t_now
                    break
                use_be = True
                continue

            x_new = result.x
            xdot_new = dots_of(x_new)

            # Trapezoidal LTE proxy on the differential quantities only:
            # change of the discrete derivative across the step, scaled
            # by dt/2 and the tolerances.  Algebraic quantities may jump
            # (ZOH signal updates) without that being an error.
            if len(lte_indices):
                scale = options.lte_abstol + options.lte_reltol * np.abs(
                    x_new[lte_indices]
                )
                lte = 0.5 * dt * np.abs(
                    xdot_new[lte_indices] - xdot_old[lte_indices]
                )
                error_norm = float(np.max(lte / scale))
            else:
                error_norm = 0.0
            decision = controller.after_error_estimate(error_norm)
            if decision.at_floor:
                report.floor_hits += 1
            if not decision.accept:
                report.rejected_steps += 1
                consecutive_rejections += 1
                if consecutive_rejections > options.max_consecutive_rejections:
                    report.gave_up = True
                    report.give_up_time = t_now
                    break
                continue

            # Accepted.
            consecutive_rejections = 0
            report.accepted_steps += 1
            t_now = t_candidate
            x_old = x_new
            xdot_old = xdot_new
            use_be = not options.trapezoidal
            times.append(t_now)
            states.append(x_new.copy())

            reader = QuantityReader(x_new, xdot_new)
            break_requested = False
            for process in system.processes:
                if process.on_accept(t_now, reader):
                    break_requested = True
            if break_requested:
                report.breaks += 1
                controller.force_break(dt_break=options.dt_min * 100.0)
                xdot_old = np.zeros_like(x_old)
                use_be = True

        return TransientResult(
            t=np.array(times),
            values=np.vstack(states),
            quantities=tuple(system.quantities),
            report=report,
        )
