"""The baseline VHDL-AMS architecture: time-domain ``'INTEG`` formulation.

This is the "awkward conversion of the magnetisation derivative dM/dH to
time derivatives" the paper criticises (its refs [4, 5]): the model
presents the analogue solver with

    M'DOT == dmdh(H, M, sign(H'DOT)) * H'DOT
    B     == mu0 * (H + Msat * m)

so the discontinuous, direction-dependent Eq. 1 sits *inside* the Newton
residual.  At every turning point ``sign(H'DOT)`` flips mid-iteration,
the raw slope can go negative (the non-physical artefact) and the
denominator can approach zero — producing exactly the non-convergence,
step-floor grinding and long run times reported in the literature.  The
stability experiment EXP-T2 counts those events.

``guards`` defaults to *off* because the historical models integrate the
raw slope; turning the guards on isolates how much of the fragility is
the slope sign and how much is solver coupling.
"""

from __future__ import annotations

from typing import Callable

from repro.constants import MU0
from repro.core.slope import SlopeGuards
from repro.hdl.vhdlams.system import AnalogSystem, EquationContext
from repro.ja.anhysteretic import Anhysteretic, make_anhysteretic
from repro.ja.equations import (
    anhysteretic_slope_term,
    effective_field,
    irreversible_slope,
)
from repro.ja.parameters import JAParameters


class IntegJAArchitecture:
    """Elaborates ``entity ja_core architecture integ_op`` into a system."""

    def __init__(
        self,
        params: JAParameters,
        source: Callable[[float], float],
        anhysteretic: Anhysteretic | None = None,
        guards: SlopeGuards = SlopeGuards.none(),
        name: str = "ja_integ",
    ) -> None:
        self.params = params
        self.source = source
        self.anhysteretic = (
            anhysteretic if anhysteretic is not None else make_anhysteretic(params)
        )
        self.guards = guards
        #: Samples where the slope handed to the solver was negative —
        #: the non-physical artefact counter.
        self.negative_slope_evaluations = 0
        self.slope_evaluations = 0

        h0 = float(source(0.0))
        self.system = AnalogSystem(name)
        self.q_h = self.system.add_quantity("H", initial=h0, differential=True)
        self.q_m = self.system.add_quantity("m", initial=0.0, differential=True)
        self.q_b = self.system.add_quantity("B", initial=MU0 * h0)
        self.system.add_equation("H_source", self._source_equation)
        self.system.add_equation("M_integ", self._m_equation)
        self.system.add_equation("B_constitutive", self._b_equation)

    def _source_equation(self, ctx: EquationContext) -> float:
        return ctx.value(self.q_h) - self.source(ctx.time)

    def _slope(self, h: float, m: float, h_dot: float) -> float:
        """Eq. 1 slope with the direction taken from ``H'DOT``."""
        params = self.params
        delta = 1.0 if h_dot >= 0.0 else -1.0
        h_eff = effective_field(params, h, m)
        m_an = self.anhysteretic.value(h_eff)
        slope = irreversible_slope(params, m_an, m, delta)
        self.slope_evaluations += 1
        if slope < 0.0:
            self.negative_slope_evaluations += 1
            if self.guards.clamp_negative:
                slope = 0.0
        slope += anhysteretic_slope_term(params, self.anhysteretic, h_eff)
        return slope

    def _m_equation(self, ctx: EquationContext) -> float:
        h = ctx.value(self.q_h)
        m = ctx.value(self.q_m)
        h_dot = ctx.dot(self.q_h)
        return ctx.dot(self.q_m) - self._slope(h, m, h_dot) * h_dot

    def _b_equation(self, ctx: EquationContext) -> float:
        h = ctx.value(self.q_h)
        m = ctx.value(self.q_m)
        return ctx.value(self.q_b) - MU0 * (h + self.params.m_sat * m)
