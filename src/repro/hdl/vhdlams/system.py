"""Analog systems: quantities + simultaneous equations + processes.

An :class:`AnalogSystem` is the elaborated model the transient solver
works on.  Equations are residual callables over an
:class:`EquationContext` that exposes ``value(q)``, ``dot(q)`` and the
candidate time — the solver supplies the discretisation of ``dot``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.errors import SolverError
from repro.hdl.vhdlams.quantity import Quantity, QuantityReader


class EquationContext:
    """What a residual sees while the Newton solve is in progress."""

    __slots__ = ("time", "_x", "_x_old", "_dot_fn")

    def __init__(
        self,
        time: float,
        x: np.ndarray,
        dot_values: np.ndarray,
    ) -> None:
        self.time = time
        self._x = x
        self._dot_fn = dot_values

    def value(self, quantity: Quantity) -> float:
        return float(self._x[quantity.index])

    def dot(self, quantity: Quantity) -> float:
        """Discretised ``q'DOT`` at the candidate point."""
        return float(self._dot_fn[quantity.index])


@dataclass(frozen=True)
class Equation:
    """A named simultaneous statement: ``residual(ctx) == 0``."""

    name: str
    residual: Callable[[EquationContext], float]


class AnalogProcess(Protocol):
    """Discrete process hook run after each accepted analogue step.

    Implementations may mutate their own Python state (the VHDL-AMS
    signal world) that equations read on the next step, and return True
    to request a ``break`` — the solver then restarts integration with a
    small backward-Euler step, exactly like the VHDL-AMS ``break``
    statement announces a discontinuity.
    """

    def on_accept(self, time: float, reader: QuantityReader) -> bool: ...


class AnalogSystem:
    """Container for the elaborated model."""

    def __init__(self, name: str = "system") -> None:
        self.name = name
        self.quantities: list[Quantity] = []
        self.equations: list[Equation] = []
        self.processes: list[AnalogProcess] = []

    def add_quantity(
        self, name: str, initial: float = 0.0, differential: bool = False
    ) -> Quantity:
        """Declare a quantity; set ``differential=True`` when its ``'DOT``
        is used by any equation (enables LTE control on it)."""
        quantity = Quantity(
            name=name,
            initial=initial,
            index=len(self.quantities),
            differential=differential,
        )
        self.quantities.append(quantity)
        return quantity

    def differential_indices(self) -> list[int]:
        """Indices of quantities under LTE control."""
        return [q.index for q in self.quantities if q.differential]

    def add_equation(
        self, name: str, residual: Callable[[EquationContext], float]
    ) -> Equation:
        equation = Equation(name=name, residual=residual)
        self.equations.append(equation)
        return equation

    def add_process(self, process: AnalogProcess) -> None:
        self.processes.append(process)

    def check_elaboration(self) -> None:
        """Validate the square-system requirement before solving."""
        n_q = len(self.quantities)
        n_e = len(self.equations)
        if n_q == 0:
            raise SolverError(f"system {self.name!r} has no quantities")
        if n_q != n_e:
            raise SolverError(
                f"system {self.name!r} is not square: "
                f"{n_q} quantities vs {n_e} equations"
            )

    def initial_state(self) -> np.ndarray:
        return np.array([q.initial for q in self.quantities], dtype=float)

    def __repr__(self) -> str:
        return (
            f"AnalogSystem({self.name!r}, {len(self.quantities)} quantities, "
            f"{len(self.equations)} equations, {len(self.processes)} processes)"
        )
