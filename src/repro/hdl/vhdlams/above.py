"""Threshold-crossing detection — the VHDL-AMS ``Q'ABOVE`` attribute.

``Q'ABOVE(level)`` is a boolean signal that flips whenever the quantity
crosses the level, and every flip is a discontinuity announcement to the
analogue solver.  :class:`AboveDetector` reproduces both halves: it
watches a quantity after each accepted step, invokes a callback on each
crossing, and (optionally, the VHDL-AMS default) requests a solver
break so integration restarts cleanly at the edge.

This is also how a *native* VHDL-AMS timeless JA model would watch the
field leave the ``lasth +/- dhmax`` window — see the tests for that
wiring.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import SolverError
from repro.hdl.vhdlams.quantity import Quantity, QuantityReader

#: Callback signature: (time, rising) -> None.
CrossingCallback = Callable[[float, bool], None]


class AboveDetector:
    """Watches ``quantity > level`` and fires on crossings.

    Register with ``system.add_process(detector)``.  ``state`` mirrors
    the boolean ``Q'ABOVE`` value; ``crossings`` counts both directions.
    """

    def __init__(
        self,
        quantity: Quantity,
        level: float,
        callback: CrossingCallback | None = None,
        break_on_cross: bool = True,
        initial_state: bool | None = None,
    ) -> None:
        if not math.isfinite(level):
            raise SolverError(f"threshold level must be finite, got {level!r}")
        self.quantity = quantity
        self.level = float(level)
        self.callback = callback
        self.break_on_cross = bool(break_on_cross)
        if initial_state is None:
            initial_state = quantity.initial > level
        self.state = bool(initial_state)
        self.crossings = 0
        self.rising_crossings = 0
        self.falling_crossings = 0

    def on_accept(self, time: float, reader: QuantityReader) -> bool:
        now_above = reader.value(self.quantity) > self.level
        if now_above == self.state:
            return False
        self.state = now_above
        self.crossings += 1
        if now_above:
            self.rising_crossings += 1
        else:
            self.falling_crossings += 1
        if self.callback is not None:
            self.callback(time, now_above)
        return self.break_on_cross

    def __repr__(self) -> str:
        return (
            f"AboveDetector({self.quantity.name!r} > {self.level}, "
            f"state={self.state}, crossings={self.crossings})"
        )
