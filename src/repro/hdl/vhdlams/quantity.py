"""Quantities: the continuous unknowns of the analogue solver."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError


@dataclass(eq=False)
class Quantity:
    """One continuous unknown (a VHDL-AMS free quantity).

    ``index`` is assigned by the owning :class:`AnalogSystem`; the value
    lives in the solver's state vector, not here.  ``differential``
    marks quantities whose ``'DOT`` appears in some equation: only those
    carry integration state and participate in local-truncation-error
    control (algebraic quantities may legitimately jump, e.g. on a
    zero-order-hold signal update, without that being an LTE failure).
    """

    name: str
    initial: float = 0.0
    index: int = -1
    differential: bool = False

    def __post_init__(self) -> None:
        if not math.isfinite(self.initial):
            raise SolverError(
                f"quantity {self.name!r} initial value must be finite, "
                f"got {self.initial!r}"
            )

    def __repr__(self) -> str:
        return f"Quantity({self.name!r}, index={self.index})"


class QuantityReader:
    """Read-only view of committed quantity values handed to processes."""

    def __init__(self, values: np.ndarray, dots: np.ndarray) -> None:
        self._values = values
        self._dots = dots

    def value(self, quantity: Quantity) -> float:
        return float(self._values[quantity.index])

    def dot(self, quantity: Quantity) -> float:
        """Discretised time derivative at the accepted point."""
        return float(self._dots[quantity.index])

    def __getitem__(self, quantity: Quantity) -> float:
        return self.value(quantity)
