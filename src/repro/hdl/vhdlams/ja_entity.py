"""VHDL-AMS architecture of the JA core using the timeless technique.

The entity has two quantities — the applied field ``H`` (pinned to a
source waveform by a simultaneous equation) and the flux density ``B`` —
and one discrete process.  The process owns the timeless integrator: it
observes each accepted value of ``H``, advances ``mirr`` by Forward
Euler *in H* whenever the increment exceeds ``dhmax``, and publishes the
resulting total magnetisation as a signal the ``B`` equation reads
(zero-order hold, the standard VHDL-AMS signal→quantity interface).
The analogue solver therefore only ever sees the smooth algebraic
equation ``B == mu0*(H + Msat*m)`` — the discontinuous Eq. 1 never
reaches the Newton loop, which is the whole point of the paper.

An optional ``break`` can be issued on every irreversible update; the
paper's technique does not need it (the equation set is already smooth)
and the default leaves it off, but the flag lets EXP-T3 measure its
cost.
"""

from __future__ import annotations

from typing import Callable

from repro.constants import DEFAULT_DHMAX, MU0
from repro.core.integrator import TimelessIntegrator
from repro.core.slope import SlopeGuards
from repro.hdl.vhdlams.quantity import QuantityReader
from repro.hdl.vhdlams.system import AnalogSystem, EquationContext
from repro.ja.anhysteretic import Anhysteretic
from repro.ja.parameters import JAParameters


class TimelessJAArchitecture:
    """Elaborates ``entity ja_core architecture timeless`` into a system."""

    def __init__(
        self,
        params: JAParameters,
        source: Callable[[float], float],
        dhmax: float = DEFAULT_DHMAX,
        anhysteretic: Anhysteretic | None = None,
        guards: SlopeGuards = SlopeGuards(),
        break_on_update: bool = False,
        name: str = "ja_timeless",
    ) -> None:
        self.params = params
        self.source = source
        self.break_on_update = bool(break_on_update)
        self.integrator = TimelessIntegrator(
            params, dhmax=dhmax, anhysteretic=anhysteretic, guards=guards
        )
        self.integrator.reset(h_initial=float(source(0.0)))

        self.system = AnalogSystem(name)
        self.q_h = self.system.add_quantity("H", initial=float(source(0.0)))
        self.q_b = self.system.add_quantity(
            "B", initial=MU0 * float(source(0.0))
        )
        self.system.add_equation("H_source", self._source_equation)
        self.system.add_equation("B_constitutive", self._b_equation)
        self.system.add_process(self)

        #: Signal published by the process, read by the B equation (ZOH).
        self._m_total_signal = self.integrator.state.m_total

    # -- simultaneous statements --------------------------------------------

    def _source_equation(self, ctx: EquationContext) -> float:
        return ctx.value(self.q_h) - self.source(ctx.time)

    def _b_equation(self, ctx: EquationContext) -> float:
        m_physical = self.params.m_sat * self._m_total_signal
        return ctx.value(self.q_b) - MU0 * (ctx.value(self.q_h) + m_physical)

    # -- the discrete process -------------------------------------------------

    def on_accept(self, time: float, reader: QuantityReader) -> bool:
        """Timeless update after each accepted analogue step."""
        h = reader.value(self.q_h)
        result = self.integrator.step(h)
        self._m_total_signal = self.integrator.state.m_total
        return self.break_on_update and result is not None

    # -- convenience ----------------------------------------------------------

    @property
    def euler_steps(self) -> int:
        return self.integrator.counters.euler_steps

    @property
    def clamped_slopes(self) -> int:
        return self.integrator.counters.clamped_slopes
