"""HDL substrates: an event-driven kernel (SystemC-like) and an AMS
solver with quantities (VHDL-AMS-like), plus the paper's two model
implementations on top of them.
"""

from repro.hdl.kernel import (
    Event,
    Module,
    Scheduler,
    Signal,
    SimTime,
)

__all__ = ["Event", "Module", "Scheduler", "Signal", "SimTime"]
