"""The JA module: the paper's SystemC listing, process for process.

Signal protocol (one field event)::

    stimulus writes H            -> delta 0 commits H
    core          (delta 1): refresh He/man/mrev/mtotal, write Msig/Bsig;
                             write hchanged=1 when |H - lasth| > dhmax
    monitorH      (delta 2): accept the increment: deltah, lasth, clear
                             hchanged, toggle trig
    Integral      (delta 3): one guarded Forward Euler step on mirr

Deviation from the verbatim listing: the published excerpt writes
``trig = 1`` and never clears it — as an ``sc_signal`` that would fire
``Integral`` only once, so the actual implementation must have used an
event or a toggle.  We toggle (``trig <= !trig``), which fires exactly
one ``Integral`` activation per accepted increment and changes nothing
else.  ``mtotal`` inside ``Integral`` is the value ``core`` computed
*before* the update — the published one-event output lag is preserved.
"""

from __future__ import annotations

from repro.constants import MU0
from repro.core.slope import SlopeGuards, guarded_slope
from repro.hdl.kernel.module import Module
from repro.hdl.kernel.scheduler import Scheduler
from repro.hdl.kernel.signals import Signal
from repro.ja.anhysteretic import Anhysteretic, make_anhysteretic
from repro.ja.parameters import JAParameters


class JACoreModule(Module):
    """Ferromagnetic core with timeless slope integration (SystemC style).

    Parameters
    ----------
    scheduler:
        The event kernel instance.
    name:
        Hierarchical module name.
    params:
        Jiles-Atherton parameters.
    h_signal:
        Input field signal [A/m], driven by a stimulus module.
    dhmax:
        Field-increment threshold [A/m].
    area:
        Core cross-section [m^2]; the published ``Bsig`` carries
        ``MU0 * area * (ms*mtotal + H)`` (flux when area != 1).
    anhysteretic:
        Anhysteretic curve (default: the paper's modified Langevin).
    guards:
        Turning-point guards (default: both on, as published).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        name: str,
        params: JAParameters,
        h_signal: Signal,
        dhmax: float,
        area: float = 1.0,
        anhysteretic: Anhysteretic | None = None,
        guards: SlopeGuards = SlopeGuards(),
    ) -> None:
        super().__init__(scheduler, name)
        self.params = params
        self.anhysteretic = (
            anhysteretic if anhysteretic is not None else make_anhysteretic(params)
        )
        self.guards = guards
        self.dhmax = float(dhmax)
        self.area = float(area)

        # Ports / signals (published names).
        self.h_signal = h_signal
        self.hchanged = self.make_signal("hchanged", 0)
        self.trig = self.make_signal("trig", 0)
        self.m_sig = self.make_signal("Msig", 0.0)
        self.b_sig = self.make_signal("Bsig", 0.0)

        # Member-variable state (published names).
        self.lasth = 0.0
        self.deltah = 0.0
        self.mirr = 0.0
        self.man = 0.0
        self.mrev = 0.0
        self.mtotal = 0.0

        # Statistics for the stability experiments.
        self.euler_steps = 0
        self.clamped_slopes = 0
        self.dropped_increments = 0

        self.make_process("core", self._core, sensitive_to=[h_signal])
        self.make_process("monitorH", self._monitor_h, sensitive_to=[self.hchanged])
        self.make_process("Integral", self._integral, sensitive_to=[self.trig])

    # -- the three published processes --------------------------------------

    def _core(self) -> None:
        """Refresh algebraic quantities; flag large field excursions."""
        params = self.params
        h = self.h_signal.read()
        if abs(h - self.lasth) > self.dhmax:
            self.hchanged.write(1)
        h_effective = h + params.alpha * params.m_sat * self.mtotal
        self.man = self.anhysteretic.value(h_effective)
        self.mrev = params.c * self.man / (1.0 + params.c)
        self.mtotal = self.mrev + self.mirr
        b = MU0 * self.area * (params.m_sat * self.mtotal + h)
        self.m_sig.write(self.mtotal)
        self.b_sig.write(b)

    def _monitor_h(self) -> None:
        """Accept the pending increment when it exceeds ``dhmax``."""
        h = self.h_signal.read()
        dh = h - self.lasth
        if abs(dh) > self.dhmax:
            self.deltah = dh
            self.lasth = h
            self.trig.write(1 - self.trig.read())
            self.hchanged.write(0)

    def _integral(self) -> None:
        """One guarded Forward Euler step in H on ``mirr``."""
        result = guarded_slope(
            self.params,
            self.man,
            self.mtotal,
            self.deltah,
            guards=self.guards,
        )
        self.mirr += result.dm
        self.euler_steps += 1
        if result.clamped:
            self.clamped_slopes += 1
        if result.dropped:
            self.dropped_increments += 1
