"""Field stimulus module: drives H along a precomputed sample list.

The timeless technique needs no particular pacing — time merely
sequences the samples — so the stimulus emits one sample per fixed tick
using a self-notifying timed event, the SystemC idiom for a testbench
driver (``wait(dt); H.write(next)`` in a thread, here an SC_METHOD with
``notify_after``).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import WaveformError
from repro.hdl.kernel.module import Module
from repro.hdl.kernel.scheduler import Scheduler
from repro.hdl.kernel.signals import Signal
from repro.hdl.kernel.simtime import SimTime


class FieldStimulus(Module):
    """Emits ``samples`` on ``h_signal``, one per ``tick`` of sim time."""

    def __init__(
        self,
        scheduler: Scheduler,
        name: str,
        h_signal: Signal,
        samples: Sequence[float],
        tick: SimTime = SimTime.ns(1),
    ) -> None:
        super().__init__(scheduler, name)
        if len(samples) == 0:
            raise WaveformError("stimulus needs at least one field sample")
        if not tick:
            raise WaveformError("stimulus tick must be a non-zero SimTime")
        self.h_signal = h_signal
        self.samples = [float(s) for s in samples]
        self.tick = tick
        self.index = 0
        self.done = False

        self._timer = self.make_event("timer")
        self.make_process(
            "drive", self._drive, sensitive_to=[self._timer], initialise=True
        )

    def _drive(self) -> None:
        if self.index >= len(self.samples):
            self.done = True
            return
        self.h_signal.write(self.samples[self.index])
        self.index += 1
        if self.index < len(self.samples):
            self._timer.notify_after(self.tick)
        else:
            self.done = True

    def __repr__(self) -> str:
        return (
            f"FieldStimulus({self.name!r}, {len(self.samples)} samples, "
            f"index={self.index})"
        )
