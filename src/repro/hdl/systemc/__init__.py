"""SystemC implementation of the timeless JA model.

A transliteration of the paper's Section 3 listing onto the event-driven
kernel of :mod:`repro.hdl.kernel`: the same three processes (``core``,
``monitorH``, ``Integral``), the same signals (``H``, ``hchanged``,
``trig``, ``Msig``, ``Bsig``), the same member-variable state, the same
operation order — including the one-event output lag the published
ordering implies.
"""

from repro.hdl.systemc.ja_module import JACoreModule
from repro.hdl.systemc.stimulus import FieldStimulus
from repro.hdl.systemc.testbench import SystemCResult, SystemCTestbench, run_systemc_sweep

__all__ = [
    "FieldStimulus",
    "JACoreModule",
    "SystemCResult",
    "SystemCTestbench",
    "run_systemc_sweep",
]
