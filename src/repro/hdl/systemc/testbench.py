"""Testbench: stimulus + JA module + tracing, with aligned result arrays.

Within one simulated-time instant all delta cycles share the same
femtosecond timestamp, so the committed ``H``, ``Msig`` and ``Bsig``
values of a field event can be aligned by timestamp alone.  The result
arrays carry, per driver sample, the values the module *outputs* for
that sample — including the published one-event lag of ``Bsig`` behind
the ``mirr`` update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.slope import SlopeGuards
from repro.hdl.kernel.scheduler import Scheduler
from repro.hdl.kernel.simtime import SimTime
from repro.hdl.kernel.tracing import Tracer
from repro.hdl.systemc.ja_module import JACoreModule
from repro.hdl.systemc.stimulus import FieldStimulus
from repro.ja.anhysteretic import Anhysteretic
from repro.ja.parameters import JAParameters


@dataclass(frozen=True)
class SystemCResult:
    """Aligned per-sample trajectory from a SystemC-style run.

    ``m`` is the normalised ``Msig``; ``b`` is ``Bsig`` [T for area=1].
    ``euler_steps``/``clamped_slopes``/``dropped_increments`` mirror the
    functional core's counters; ``delta_cycles`` and ``process_runs``
    report kernel effort (the "simulation time" proxy used by EXP-T3).
    """

    h: np.ndarray
    m: np.ndarray
    b: np.ndarray
    euler_steps: int
    clamped_slopes: int
    dropped_increments: int
    delta_cycles: int
    process_runs: int

    def __len__(self) -> int:
        return len(self.h)


class SystemCTestbench:
    """Builds and runs the stimulus → JA-core bench."""

    def __init__(
        self,
        params: JAParameters,
        samples: Sequence[float],
        dhmax: float,
        area: float = 1.0,
        anhysteretic: Anhysteretic | None = None,
        guards: SlopeGuards = SlopeGuards(),
        tick: SimTime = SimTime.ns(1),
    ) -> None:
        self.scheduler = Scheduler()
        self.h_signal = self.scheduler.signal("H", float(samples[0]) if len(samples) else 0.0)
        # The first stimulus sample must produce a change event even when
        # it equals the initial value; start the signal off-list instead.
        self.h_signal.force(float("nan"))
        self.stimulus = FieldStimulus(
            self.scheduler, "stim", self.h_signal, samples, tick=tick
        )
        self.ja = JACoreModule(
            self.scheduler,
            "ja",
            params,
            self.h_signal,
            dhmax=dhmax,
            area=area,
            anhysteretic=anhysteretic,
            guards=guards,
        )
        self.tracer = Tracer(self.scheduler)
        self.h_trace = self.tracer.watch(self.h_signal, record_initial=False)
        self.m_trace = self.tracer.watch(self.ja.m_sig, record_initial=False)
        self.b_trace = self.tracer.watch(self.ja.b_sig, record_initial=False)

    def run(self) -> SystemCResult:
        """Run to quiescence and return aligned arrays."""
        self.scheduler.run()
        return self._collect()

    def _collect(self) -> SystemCResult:
        # Build per-timestamp "last committed value" maps; H changes
        # exactly once per driver sample, so its trace defines the grid.
        def last_per_time(trace) -> dict[int, float]:
            committed: dict[int, float] = {}
            for t, v in zip(trace.times_fs, trace.values):
                committed[t] = v
            return committed

        m_at = last_per_time(self.m_trace)
        b_at = last_per_time(self.b_trace)

        h_list: list[float] = []
        m_list: list[float] = []
        b_list: list[float] = []
        m_last = 0.0
        b_last = 0.0
        for t, h in zip(self.h_trace.times_fs, self.h_trace.values):
            m_last = m_at.get(t, m_last)
            b_last = b_at.get(t, b_last)
            h_list.append(h)
            m_list.append(m_last)
            b_list.append(b_last)

        return SystemCResult(
            h=np.array(h_list),
            m=np.array(m_list),
            b=np.array(b_list),
            euler_steps=self.ja.euler_steps,
            clamped_slopes=self.ja.clamped_slopes,
            dropped_increments=self.ja.dropped_increments,
            delta_cycles=self.scheduler.delta_count,
            process_runs=self.scheduler.process_runs,
        )


def run_systemc_sweep(
    params: JAParameters,
    samples: Sequence[float],
    dhmax: float,
    **kwargs,
) -> SystemCResult:
    """Convenience one-shot: build a testbench, run it, return the result."""
    bench = SystemCTestbench(params, samples, dhmax, **kwargs)
    return bench.run()
