"""Pluggable array backends for the execution layers.

One :class:`ArrayBackend` per way of evaluating the vectorised kernels:
the ``numpy`` reference backend (always registered, bitwise lane
contract) and the optional ``numba`` JIT backend (registered only when
numba is importable; held to an ``rtol`` tier instead).  See
:mod:`repro.backend.base` for the protocol and the selection rules
(``backend=`` arguments, the ``REPRO_BACKEND`` environment variable).
"""

from repro.backend.base import (
    BACKEND_ENV,
    DEFAULT_BACKEND,
    ArrayBackend,
    as_backend,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
)
from repro.backend.numba_backend import build_numba_backend
from repro.backend.numpy_backend import NUMPY_BACKEND
from repro.backend.threads import (
    active_threads,
    has_threading,
    max_threads,
    set_active_threads,
    thread_limit,
)

register_backend(NUMPY_BACKEND)

_numba = build_numba_backend()
if _numba is not None:
    register_backend(_numba)

__all__ = [
    "ArrayBackend",
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "NUMPY_BACKEND",
    "active_threads",
    "as_backend",
    "build_numba_backend",
    "get_backend",
    "has_threading",
    "list_backends",
    "max_threads",
    "register_backend",
    "resolve_backend",
    "set_active_threads",
    "thread_limit",
]
