"""Intra-shard lane threading: explicit numba thread pinning.

The fourth axis of the execution stack (after backend, pool width and
fused dispatch): the numba backend's fused drivers can advance their
independent lanes on several *threads* inside one process, via
``numba.prange`` over the lane axis.  This module owns the pinning so
that the planner's oversubscription rule — **pool workers × threads per
worker never exceeds the host's CPU affinity** — is enforceable:

* the active thread count is explicit process state
  (:func:`set_active_threads` / :func:`active_threads`), never an
  ambient numba default, so a pool worker runs exactly the thread count
  its :class:`~repro.parallel.spec.ShardSpec` carries;
* :func:`max_threads` respects ``NUMBA_NUM_THREADS``: numba caps
  ``set_num_threads`` at its launch-time thread-pool size, so requests
  above it are clamped, not errors;
* hosts without numba degrade to a single thread — the interpreted
  validation path (``tests/test_backend_threaded.py``) still exercises
  the lane-major loop bodies, because ``prange`` falls back to plain
  ``range`` outside JIT compilation.

Per-lane arithmetic is untouched by the lane-major iteration order
(lanes are independent; no reduction crosses a lane), so a threaded run
is **bitwise identical** to the same backend's sequential fused run —
the threading tier costs no additional accuracy beyond the backend's
own rtol tier against the numpy reference.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.errors import ParameterError

try:  # pragma: no cover - trivial alias, exercised on both CI legs
    from numba import prange  # noqa: F401  (re-exported for loop bodies)

    _HAS_NUMBA = True
except ImportError:  # interpreted fallback: identical iteration order
    prange = range
    _HAS_NUMBA = False

#: Process-local active thread count (what the fused drivers consult).
_ACTIVE_THREADS = 1


def has_threading() -> bool:
    """True when numba (and therefore a real thread pool) is available."""
    return _HAS_NUMBA


def max_threads() -> int:
    """The largest thread count this process can pin.

    numba sizes its thread pool once at launch (``NUMBA_NUM_THREADS``,
    defaulting to the host CPU count); ``set_num_threads`` above that is
    an error, so the planner and the executor clamp against this value.
    Without numba there is no lane thread pool at all: 1.
    """
    if not _HAS_NUMBA:
        return 1
    from numba import config

    return int(config.NUMBA_NUM_THREADS)


def active_threads() -> int:
    """The thread count the fused drivers currently run with."""
    return _ACTIVE_THREADS


def set_active_threads(n: int) -> int:
    """Pin the fused drivers' lane-thread count; returns the effective
    (clamped) value.

    Requests above :func:`max_threads` clamp rather than raise — the
    calibration file may have been recorded on a wider host, and a
    clamped plan is still the nearest executable plan.  ``n < 1`` is a
    caller bug and raises.
    """
    global _ACTIVE_THREADS
    if n < 1:
        raise ParameterError(f"thread count must be >= 1, got {n}")
    effective = min(int(n), max_threads())
    if _HAS_NUMBA and effective > 0:
        import numba

        numba.set_num_threads(effective)
    _ACTIVE_THREADS = effective
    return effective


@contextmanager
def thread_limit(n: int):
    """Scoped thread pinning: set, run, restore.

    The executor wraps every shard execution in this — pool workers pin
    the thread count their spec carries, the serial fallback pins it
    in-process — so a plan's thread choice can never leak into
    subsequent unrelated runs.
    """
    previous = _ACTIVE_THREADS
    effective = set_active_threads(n)
    try:
        yield effective
    finally:
        set_active_threads(previous)
