"""The array-backend protocol: a named ufunc namespace plus a registry.

An :class:`ArrayBackend` is what the execution layers thread around
instead of importing ``numpy`` directly: a namespace object (``xp``)
carrying the ufuncs the kernels use (``where``, ``arctan``, ``tanh``,
``abs``, ``multiply``, ...), an exactness contract, and optional
per-family **fused series drivers** that advance a whole driver-sample
axis in one call (a JIT-compiled loop, a GPU launch, ...).

Two equivalence tiers exist, and every backend declares which one it
holds:

``exact=True``
    The backend executes the *same IEEE-754 operations* the scalar
    models execute per lane — the repo's bitwise lane contract.  The
    ``numpy`` reference backend is exact by construction: its ``xp``
    **is** the ``numpy`` module, so threading it changes no bits.
``exact=False``
    A compiled backend (``numba``) whose math kernels may differ from
    NumPy's by 1 ulp (libm vs SIMD polynomials); its ``rtol`` is the
    tolerance the conformance suite holds it to instead.

Backend selection is explicit at construction time (``backend=`` on the
batch engines) and environment-driven at the high-level surfaces: the
family registry, the scenario runner, the experiment CLI and the
:class:`repro.parallel.spec.EnsembleSpec` recipe all resolve
``None`` through the ``REPRO_BACKEND`` environment variable (default
``"numpy"``) via :func:`resolve_backend`.  The engines themselves
default to the numpy backend so that directly constructed models keep
the bitwise contract regardless of the environment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import ParameterError

#: Environment variable naming the default backend for the high-level
#: selection surfaces (registry, scenarios, experiment CLI, specs).
BACKEND_ENV = "REPRO_BACKEND"

#: Name of the exact reference backend engines default to.
DEFAULT_BACKEND = "numpy"


@dataclass(frozen=True)
class ArrayBackend:
    """One registered array backend.

    Attributes
    ----------
    name:
        Registry key (``"numpy"``, ``"numba"``).
    xp:
        The ufunc namespace the vectorised kernels evaluate through —
        a ``numpy``-compatible module object.  For the reference
        backend this is the ``numpy`` module itself, which is what
        makes threading it bitwise-neutral.
    exact:
        True when lanes executed on this backend are bitwise identical
        to the scalar models (the repo's reference contract); False for
        compiled backends held to ``rtol`` instead.
    rtol:
        Relative tolerance the conformance suite applies to non-exact
        backends (ignored when ``exact``).
    description:
        One line for listings and experiment tables.
    fused_series:
        Optional per-family fused sweep drivers,
        ``{family_name: driver}`` with
        ``driver(batch, h_arr) -> (m, b, updated, extras) | None``.
        A driver may decline a configuration it cannot compile (return
        ``None``); the engine then falls back to its vectorised
        ``xp`` loop.  State and counters after a driver call must be
        exactly what per-sample stepping would have produced (within
        the backend's equivalence tier).
    """

    name: str
    xp: Any
    exact: bool
    rtol: float = 0.0
    description: str = ""
    fused_series: Mapping[str, Callable] = field(default_factory=dict)

    def fused_driver(self, family: str) -> "Callable | None":
        """The compiled fused-series driver registered for a family.

        This is the per-family dispatch point of the engines' fused
        ``step_series`` paths: ``None`` means the backend compiles no
        driver for the family and the engine runs its vectorised ``xp``
        loop instead.  (A registered driver may still *decline* a
        specific configuration at call time by returning ``None``.)
        """
        return self.fused_series.get(family)

    @property
    def fused_families(self) -> tuple[str, ...]:
        """Names of the families this backend compiles drivers for
        (sorted; introspection for listings and experiment tables)."""
        return tuple(sorted(self.fused_series))

    def __repr__(self) -> str:  # keep reprs short in specs/payloads
        tier = "bitwise" if self.exact else f"rtol={self.rtol:g}"
        return f"ArrayBackend({self.name!r}, {tier})"


_BACKENDS: dict[str, ArrayBackend] = {}


def register_backend(backend: ArrayBackend) -> ArrayBackend:
    """Register a backend under its name (duplicates are an error)."""
    if backend.name in _BACKENDS:
        raise ParameterError(f"duplicate array backend {backend.name!r}")
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> ArrayBackend:
    """Look a backend up by name."""
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise ParameterError(
            f"unknown array backend {name!r}; registered: {known}"
        )


def list_backends() -> list[ArrayBackend]:
    """All registered backends, sorted by name."""
    return [_BACKENDS[k] for k in sorted(_BACKENDS)]


def as_backend(backend: "ArrayBackend | str | None") -> ArrayBackend:
    """Coerce an engine's ``backend`` argument to an :class:`ArrayBackend`.

    ``None`` means the exact reference backend — deliberately **not**
    the :data:`BACKEND_ENV` environment variable, so that directly
    constructed engines (and the bitwise equivalence pins that build
    them) never change behaviour with the environment.  Use
    :func:`resolve_backend` where the environment should win.
    """
    if backend is None:
        return get_backend(DEFAULT_BACKEND)
    if isinstance(backend, ArrayBackend):
        return backend
    return get_backend(backend)


def resolve_backend(choice: "ArrayBackend | str | None" = None) -> ArrayBackend:
    """Resolve a backend choice with environment fallback.

    Precedence: explicit ``choice`` (name or backend object), then the
    ``REPRO_BACKEND`` environment variable, then ``"numpy"``.  This is
    the selection rule of the high-level surfaces — the family
    registry's ``make_batch``, ``run_scenario``, the experiment CLI and
    the parallel :class:`~repro.parallel.spec.EnsembleSpec`.
    """
    if choice is not None:
        return as_backend(choice)
    env = os.environ.get(BACKEND_ENV, "").strip()
    if env:
        return get_backend(env)
    return get_backend(DEFAULT_BACKEND)
