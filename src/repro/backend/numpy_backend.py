"""The exact reference backend: ``xp`` **is** the ``numpy`` module.

Threading this backend through the kernels changes no bits — every
``xp.where``/``xp.arctan``/... call resolves to the very ``np``
function the pre-backend code called — so the bitwise lane contract
(batch lane == scalar model, sharded == single-process) holds on it by
construction.  It registers no fused-series drivers: the engines'
vectorised fused loops already run on ``xp`` directly.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend

NUMPY_BACKEND = ArrayBackend(
    name="numpy",
    xp=np,
    exact=True,
    rtol=0.0,
    description="NumPy reference backend (bitwise lane contract)",
)
