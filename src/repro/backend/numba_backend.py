"""Optional numba JIT backend (registered only when numba imports).

The backend's value is one **fused series driver per registered model
family**: the whole ``(samples, cores)`` recurrence runs as one
nopython-compiled loop nest — no per-sample ufunc dispatch, no
temporaries —

* **timeless** — the paper's recurrence as a per-lane double loop, a
  transliteration of the scalar fast path of
  :func:`repro.core.kernel.step_kernel` (the published SystemC
  processes);
* **preisach** — the ``(cores, nα, nβ)`` masked relay-tensor switching
  as threshold scans over each lane's flattened relay grid, with the
  Everett-weighted relay sum recomputed only on samples that actually
  switched a weighted relay;
* **time-domain** — the per-lane explicit dM/dH chain with the
  pathology counters (negative-slope evaluations) and the sticky
  ``diverged`` freeze of runaway lanes.

The compiled loops evaluate through libm (``math.atan``) where the
reference evaluates through NumPy's SIMD kernels — 1 ulp per
transcendental call — and the Preisach relay sum reduces sequentially
where NumPy reduces pairwise.  That makes this backend ``exact=False``:
the conformance suite holds trajectories to ``rtol`` instead of the
bitwise pin.  Threshold decisions still match the reference exactly —
the timeless discretiser comparison (hence ``euler_steps``), Preisach
relay switching (hence ``updated`` and ``switch_events``) and the
time-domain ``dh != 0`` activity mask (hence ``steps``) all involve
only exactly-representable operands.

Configurations a compiled loop does not cover — any anhysteretic curve
other than the paper's modified Langevin for the JA families — are
*declined* (the driver returns ``None``) and the engine falls back to
its vectorised ``xp`` loop, which on this backend evaluates through
NumPy unchanged.  Every loop body is a plain importable function:
hosts without numba validate the semantics by interpreting it
(``tests/test_backend.py``), and the JIT wrapper compiles it once per
process on first use.

Each family has **two** loop bodies: the sample-major double loop (the
original transliteration, compiled sequentially) and a lane-major
variant whose outer loop runs over lanes via ``numba.prange`` — the
intra-shard threading axis of the execution planner
(:mod:`repro.sched`).  Lanes are independent, so the lane-major order
re-executes each lane's exact arithmetic sequence: a threaded run is
bitwise identical to the sequential fused run on this backend
(``tests/test_backend_threaded.py`` pins it).  The drivers dispatch on
:func:`repro.backend.threads.active_threads`: more than one pinned
thread selects the ``parallel=True`` lane-major kernel.
"""

from __future__ import annotations

import math

import numpy as np

from repro.backend.base import ArrayBackend
from repro.backend.threads import active_threads, prange
from repro.constants import MU0, TWO_OVER_PI
from repro.errors import ParameterError


def build_numba_backend() -> "ArrayBackend | None":
    """The numba backend, or ``None`` when numba is not installed."""
    try:
        import numba  # noqa: F401
    except ImportError:  # pragma: no cover - exercised on the numba CI leg
        return None
    return ArrayBackend(
        name="numba",
        xp=np,
        exact=False,
        rtol=1e-9,
        description="numba JIT backend (fused nopython series loops)",
        fused_series={
            "timeless": _timeless_fused_series,
            "preisach": _preisach_fused_series,
            "time-domain": _time_domain_fused_series,
        },
    )


_KERNEL_CACHE: dict = {}

_TWO_OVER_PI = float(TWO_OVER_PI)
_MU0 = float(MU0)


def timeless_series_loop(
    h2d,
    shape,
    am,
    one_c,
    c_arr,
    k_arr,
    m_sat,
    dhmax,
    accept_equal,
    clamp_negative,
    drop_opposing,
    h_acc,
    m_irr,
    m_tot,
    delta_st,
    m_out,
    b_out,
    man_out,
    upd,
    euler,
    clamped_n,
    dropped_n,
):
    """The fused timeless recurrence as a plain nopython-compilable
    double loop — a transliteration of the scalar fast path of
    :func:`repro.core.kernel.step_kernel` (the published SystemC
    processes), operating on preallocated arrays only.

    Kept importable without numba so the semantics are testable on any
    host; :func:`_timeless_kernel` wraps it in ``numba.njit`` once per
    process when the backend is actually used.
    """
    n_samples, n_cores = h2d.shape
    for i in range(n_samples):
        for j in range(n_cores):
            h = h2d[i, j]
            # core: algebraic refresh at the new field
            m_an = _TWO_OVER_PI * math.atan((h + am[j] * m_tot[j]) / shape[j])  # repro-lint: disable=L002 -- deliberate libm: this backend's documented rtol tier (PR 4)
            m_rev = c_arr[j] * m_an / one_c[j]
            # monitorH: the discretiser decision
            dh = h - h_acc[j]
            magnitude = abs(dh)
            if accept_equal[j]:
                accepted = magnitude >= dhmax[j]
            else:
                accepted = magnitude > dhmax[j]
            if accepted:
                # Integral: one guarded Forward Euler step
                delta = 1.0 if dh > 0.0 else -1.0
                delta_m = m_an - (m_rev + m_irr[j])
                denominator = one_c[j] * (delta * k_arr[j] - am[j] * delta_m)
                if denominator == 0.0:
                    if delta_m > 0.0:
                        raw = math.inf
                    elif delta_m < 0.0:
                        raw = -math.inf
                    else:
                        raw = 0.0
                else:
                    raw = delta_m / denominator
                dmdh = raw
                if clamp_negative[j] and not (dmdh > 0.0):
                    dmdh = 0.0
                    if raw != 0.0:
                        clamped_n[j] += 1
                if math.isnan(dmdh):
                    dm = math.nan
                else:
                    dm = dh * dmdh
                    if drop_opposing[j] and dm * dh < 0.0:
                        dm = 0.0
                        dropped_n[j] += 1
                m_irr[j] = m_irr[j] + dm
                h_acc[j] = h
                delta_st[j] = delta
                euler[j] += 1
                upd[i, j] = True
            m_tot[j] = m_rev + m_irr[j]
            man_out[i, j] = m_an
            m_out[i, j] = m_tot[j] * m_sat[j]
            b_out[i, j] = _MU0 * (h + m_sat[j] * m_tot[j])


def timeless_lane_series_loop(
    h2d,
    shape,
    am,
    one_c,
    c_arr,
    k_arr,
    m_sat,
    dhmax,
    accept_equal,
    clamp_negative,
    drop_opposing,
    h_acc,
    m_irr,
    m_tot,
    delta_st,
    m_out,
    b_out,
    man_out,
    upd,
    euler,
    clamped_n,
    dropped_n,
):
    """Lane-major twin of :func:`timeless_series_loop`: the outer loop
    runs over *lanes* via ``prange``, each lane walking its whole sample
    column sequentially.  Lanes are independent (no state or reduction
    crosses the lane axis), so each lane executes the identical
    arithmetic sequence — the threaded kernel is bitwise equal to the
    sequential one on this backend.

    Kept importable without numba (``prange`` degrades to ``range``) so
    the semantics are testable interpreted on any host;
    :func:`_timeless_parallel_kernel` compiles it with ``parallel=True``
    once per process when a plan pins more than one thread.
    """
    n_samples, n_cores = h2d.shape
    for j in prange(n_cores):
        for i in range(n_samples):
            h = h2d[i, j]
            m_an = _TWO_OVER_PI * math.atan((h + am[j] * m_tot[j]) / shape[j])  # repro-lint: disable=L002 -- deliberate libm: this backend's documented rtol tier (PR 4)
            m_rev = c_arr[j] * m_an / one_c[j]
            dh = h - h_acc[j]
            magnitude = abs(dh)
            if accept_equal[j]:
                accepted = magnitude >= dhmax[j]
            else:
                accepted = magnitude > dhmax[j]
            if accepted:
                delta = 1.0 if dh > 0.0 else -1.0
                delta_m = m_an - (m_rev + m_irr[j])
                denominator = one_c[j] * (delta * k_arr[j] - am[j] * delta_m)
                if denominator == 0.0:
                    if delta_m > 0.0:
                        raw = math.inf
                    elif delta_m < 0.0:
                        raw = -math.inf
                    else:
                        raw = 0.0
                else:
                    raw = delta_m / denominator
                dmdh = raw
                if clamp_negative[j] and not (dmdh > 0.0):
                    dmdh = 0.0
                    if raw != 0.0:
                        clamped_n[j] += 1
                if math.isnan(dmdh):
                    dm = math.nan
                else:
                    dm = dh * dmdh
                    if drop_opposing[j] and dm * dh < 0.0:
                        dm = 0.0
                        dropped_n[j] += 1
                m_irr[j] = m_irr[j] + dm
                h_acc[j] = h
                delta_st[j] = delta
                euler[j] += 1
                upd[i, j] = True
            m_tot[j] = m_rev + m_irr[j]
            man_out[i, j] = m_an
            m_out[i, j] = m_tot[j] * m_sat[j]
            b_out[i, j] = _MU0 * (h + m_sat[j] * m_tot[j])


def _compiled(key: str, body, parallel: bool = False):
    """Compile (once per process) one loop body under a cache key."""
    kernel = _KERNEL_CACHE.get(key)
    if kernel is not None:
        return kernel
    import numba

    kernel = numba.njit(cache=False, parallel=parallel)(body)
    _KERNEL_CACHE[key] = kernel
    return kernel


def _timeless_kernel():
    """Compile (once per process) the fused timeless series loop."""
    return _compiled("timeless", timeless_series_loop)


def _timeless_parallel_kernel():
    """Compile (once per process) the ``prange`` lane-major variant."""
    return _compiled("timeless-lanes", timeless_lane_series_loop, parallel=True)


def _lane_array(value, n: int, dtype) -> np.ndarray:
    """Broadcast a scalar-or-array config value to one writable lane array."""
    return np.ascontiguousarray(
        np.broadcast_to(np.asarray(value, dtype=dtype), (n,))
    ).copy()


def _timeless_fused_series(batch, h_arr: np.ndarray):
    """Fused series driver for :class:`repro.batch.engine.BatchTimelessModel`.

    ``h_arr`` arrives validated (1-D or ``(samples, cores)`` float).
    Returns ``(m, b, updated, extras)`` with state and counters advanced
    exactly as per-sample stepping would have advanced them (within the
    backend's rtol tier), or ``None`` to decline a configuration the
    compiled loop does not cover.
    """
    from repro.ja.anhysteretic import ModifiedLangevinAnhysteretic

    curve = batch.anhysteretic
    if type(curve) is not ModifiedLangevinAnhysteretic:
        return None

    from repro.batch.lanes import as_lane_matrix

    n = batch.n_cores
    n_samples = len(h_arr)
    h2d = np.ascontiguousarray(as_lane_matrix(h_arr, n))

    params = batch.params
    am = params.alpha * params.m_sat
    one_c = 1.0 + params.c
    shape = _lane_array(curve.shape, n, float)
    accept_equal = _lane_array(batch.accept_equal, n, bool)
    clamp_negative = _lane_array(batch.guards.clamp_negative, n, bool)
    drop_opposing = _lane_array(batch.guards.drop_opposing, n, bool)

    state = batch.state
    h_acc = state.h_accepted.copy()
    m_irr = state.m_irr.copy()
    m_tot = state.m_total.copy()
    delta_st = state.delta.copy()

    m_out = np.empty((n_samples, n))
    b_out = np.empty((n_samples, n))
    man_out = np.empty((n_samples, n))
    updated = np.zeros((n_samples, n), dtype=np.bool_)
    euler = np.zeros(n, dtype=np.int64)
    clamped_n = np.zeros(n, dtype=np.int64)
    dropped_n = np.zeros(n, dtype=np.int64)

    kernel = (
        _timeless_parallel_kernel()
        if active_threads() > 1
        else _timeless_kernel()
    )
    kernel(
        h2d,
        shape,
        am,
        one_c,
        params.c,
        params.k,
        params.m_sat,
        batch.dhmax,
        accept_equal,
        clamp_negative,
        drop_opposing,
        h_acc,
        m_irr,
        m_tot,
        delta_st,
        m_out,
        b_out,
        man_out,
        updated,
        euler,
        clamped_n,
        dropped_n,
    )

    state.h_applied = h2d[-1].copy()
    state.h_accepted = h_acc
    state.m_irr = m_irr
    state.m_an = man_out[-1].copy()
    state.m_rev = params.c * state.m_an / one_c
    state.m_total = m_tot
    state.delta = delta_st
    state.updates += euler
    counters = batch.counters
    counters.field_events += n_samples
    counters.observations += n_samples
    counters.euler_steps += euler
    counters.acceptances += euler
    counters.clamped_slopes += clamped_n
    counters.dropped_increments += dropped_n

    return m_out, b_out, updated, {"m_an": man_out}


def preisach_series_loop(
    h2d,
    state,
    weights,
    valid,
    alpha,
    beta,
    m_sat,
    h_cur,
    m_norm,
    m_out,
    b_out,
    upd,
    switches,
):
    """The fused Preisach switching recurrence as a plain
    nopython-compilable loop nest over each lane's flattened relay grid
    — the same masked row/column writes as
    :meth:`repro.batch.preisach.BatchPreisachModel.step`, relay by
    relay, Everett weighting included.

    The weighted relay sum is recomputed only on samples that changed a
    *weighted* relay (zero-weight and sign-of-zero flips cannot move
    the reference's float sum either), and reduces sequentially where
    NumPy reduces pairwise — which is why trajectories hold the
    backend's rtol tier while the switching decisions, the ``updated``
    mask and ``switch_events`` stay exact: threshold comparisons
    involve only exactly-representable driver samples and grid values,
    and any weighted switch moves the exact sum by at least twice the
    smallest non-zero weight (orders of magnitude above summation
    rounding).

    Kept importable without numba so the semantics are testable on any
    host; :func:`_preisach_kernel` wraps it in ``numba.njit`` once per
    process when the backend is actually used.
    """
    n_samples, n_cores = h2d.shape
    n_alpha = alpha.shape[1]
    n_beta = beta.shape[1]
    for i in range(n_samples):
        for j in range(n_cores):
            h = h2d[i, j]
            weighted_switch = False
            if h > h_cur[j]:
                for ia in range(n_alpha):
                    if alpha[j, ia] <= h:
                        for ib in range(n_beta):
                            new = 1.0 if valid[j, ia, ib] else 0.0
                            if (
                                state[j, ia, ib] != new
                                and weights[j, ia, ib] != 0.0
                            ):
                                weighted_switch = True
                            state[j, ia, ib] = new
            elif h < h_cur[j]:
                for ib in range(n_beta):
                    if beta[j, ib] >= h:
                        for ia in range(n_alpha):
                            new = -1.0 if valid[j, ia, ib] else 0.0
                            if (
                                state[j, ia, ib] != new
                                and weights[j, ia, ib] != 0.0
                            ):
                                weighted_switch = True
                            state[j, ia, ib] = new
            h_cur[j] = h
            changed = False
            if weighted_switch:
                total = 0.0
                for ia in range(n_alpha):
                    for ib in range(n_beta):
                        total += weights[j, ia, ib] * state[j, ia, ib]
                changed = total != m_norm[j]
                m_norm[j] = total
            if changed:
                switches[j] += 1
            upd[i, j] = changed
            m_phys = m_norm[j] * m_sat[j]
            m_out[i, j] = m_phys
            b_out[i, j] = _MU0 * (h + m_phys)


def preisach_lane_series_loop(
    h2d,
    state,
    weights,
    valid,
    alpha,
    beta,
    m_sat,
    h_cur,
    m_norm,
    m_out,
    b_out,
    upd,
    switches,
):
    """Lane-major twin of :func:`preisach_series_loop`: ``prange`` over
    lanes, each lane scanning its own relay grid through the whole
    series sequentially.  All state (relay tensor rows, ``h_cur``,
    ``m_norm``, ``switches``) is per-lane, so the threaded kernel is
    bitwise equal to the sequential one — including the sequential relay
    sum that defines this backend's rtol tier.

    Kept importable without numba; :func:`_preisach_parallel_kernel`
    compiles it with ``parallel=True`` once per process.
    """
    n_samples, n_cores = h2d.shape
    n_alpha = alpha.shape[1]
    n_beta = beta.shape[1]
    for j in prange(n_cores):
        for i in range(n_samples):
            h = h2d[i, j]
            weighted_switch = False
            if h > h_cur[j]:
                for ia in range(n_alpha):
                    if alpha[j, ia] <= h:
                        for ib in range(n_beta):
                            new = 1.0 if valid[j, ia, ib] else 0.0
                            if (
                                state[j, ia, ib] != new
                                and weights[j, ia, ib] != 0.0
                            ):
                                weighted_switch = True
                            state[j, ia, ib] = new
            elif h < h_cur[j]:
                for ib in range(n_beta):
                    if beta[j, ib] >= h:
                        for ia in range(n_alpha):
                            new = -1.0 if valid[j, ia, ib] else 0.0
                            if (
                                state[j, ia, ib] != new
                                and weights[j, ia, ib] != 0.0
                            ):
                                weighted_switch = True
                            state[j, ia, ib] = new
            h_cur[j] = h
            changed = False
            if weighted_switch:
                total = 0.0
                for ia in range(n_alpha):
                    for ib in range(n_beta):
                        total += weights[j, ia, ib] * state[j, ia, ib]
                changed = total != m_norm[j]
                m_norm[j] = total
            if changed:
                switches[j] += 1
            upd[i, j] = changed
            m_phys = m_norm[j] * m_sat[j]
            m_out[i, j] = m_phys
            b_out[i, j] = _MU0 * (h + m_phys)


def _preisach_kernel():
    """Compile (once per process) the fused Preisach series loop."""
    return _compiled("preisach", preisach_series_loop)


def _preisach_parallel_kernel():
    """Compile (once per process) the ``prange`` lane-major variant."""
    return _compiled("preisach-lanes", preisach_lane_series_loop, parallel=True)


def _preisach_fused_series(batch, h_arr: np.ndarray):
    """Fused series driver for
    :class:`repro.batch.preisach.BatchPreisachModel`.

    ``h_arr`` arrives validated (1-D or ``(samples, cores)`` float).
    Returns ``(m, b, updated, extras)`` with relay state and counters
    advanced exactly as per-sample stepping would have advanced them
    (switching and ``switch_events`` exact, trajectories within the
    backend's rtol tier).
    """
    from repro.batch.lanes import as_lane_matrix

    if not np.isfinite(h_arr).all():
        raise ParameterError(f"h must be finite, got {h_arr!r}")
    n = batch.n_cores
    n_samples = len(h_arr)
    h2d = np.ascontiguousarray(as_lane_matrix(h_arr, n))

    h_cur = batch.h.copy()
    m_norm = batch.m_normalised  # fresh pairwise-summed reference seed
    switches = np.zeros(n, dtype=np.int64)
    m_out = np.empty((n_samples, n))
    b_out = np.empty((n_samples, n))
    updated = np.zeros((n_samples, n), dtype=np.bool_)

    kernel = (
        _preisach_parallel_kernel()
        if active_threads() > 1
        else _preisach_kernel()
    )
    kernel(
        h2d,
        batch.relay_state(),
        batch.weights,
        batch.relay_validity(),
        batch.alpha_thresholds,
        batch.beta_thresholds,
        batch.m_sat,
        h_cur,
        m_norm,
        m_out,
        b_out,
        updated,
        switches,
    )

    batch.commit_fused_series(h_cur, switches)
    return m_out, b_out, updated, {}


def time_domain_series_loop(
    h2d,
    am,
    one_c,
    rev_coeff,
    k_arr,
    shape,
    clamp_negative,
    limit,
    m_sat,
    h_cur,
    m,
    diverged,
    m_out,
    b_out,
    upd,
    steps,
    negatives,
):
    """The fused classic dM/dH chain as a plain nopython-compilable
    double loop — a transliteration of the scalar sample-driven path of
    :meth:`repro.baselines.time_domain.TimeDomainJAModel.apply_field`
    (forward Euler in H, slope evaluated at the *previous* field), with
    the per-lane pathology counters and the sticky ``diverged`` freeze.

    Kept importable without numba so the semantics are testable on any
    host; :func:`_time_domain_kernel` wraps it in ``numba.njit`` once
    per process when the backend is actually used.
    """
    n_samples, n_cores = h2d.shape
    for i in range(n_samples):
        for j in range(n_cores):
            h = h2d[i, j]
            dh = h - h_cur[j]
            if dh != 0.0 and not diverged[j]:
                delta = 1.0 if dh >= 0.0 else -1.0
                h_eff = h_cur[j] + am[j] * m[j]
                x = h_eff / shape[j]
                m_an = _TWO_OVER_PI * math.atan(x)  # repro-lint: disable=L002 -- deliberate libm: this backend's documented rtol tier (PR 4)
                delta_m = m_an - m[j]
                denominator = one_c[j] * (delta * k_arr[j] - am[j] * delta_m)
                if denominator == 0.0:
                    if delta_m > 0.0:
                        slope = math.inf
                    elif delta_m < 0.0:
                        slope = -math.inf
                    else:
                        slope = 0.0
                else:
                    slope = delta_m / denominator
                if slope < 0.0:
                    negatives[j] += 1
                    if clamp_negative[j]:
                        slope = 0.0
                slope = slope + rev_coeff[j] * (
                    _TWO_OVER_PI / (1.0 + x * x) / shape[j]
                )
                m[j] = m[j] + slope * dh
                steps[j] += 1
                if (
                    math.isnan(m[j])
                    or math.isinf(m[j])
                    or abs(m[j]) > limit[j]
                ):
                    diverged[j] = True
                upd[i, j] = True
            h_cur[j] = h
            m_phys = m[j] * m_sat[j]
            m_out[i, j] = m_phys
            b_out[i, j] = _MU0 * (h + m_phys)


def time_domain_lane_series_loop(
    h2d,
    am,
    one_c,
    rev_coeff,
    k_arr,
    shape,
    clamp_negative,
    limit,
    m_sat,
    h_cur,
    m,
    diverged,
    m_out,
    b_out,
    upd,
    steps,
    negatives,
):
    """Lane-major twin of :func:`time_domain_series_loop`: ``prange``
    over lanes, each lane stepping its own explicit dM/dH chain through
    the whole series sequentially — pathology counters and the sticky
    ``diverged`` freeze included, all per-lane, so the threaded kernel
    is bitwise equal to the sequential one.

    Kept importable without numba; :func:`_time_domain_parallel_kernel`
    compiles it with ``parallel=True`` once per process.
    """
    n_samples, n_cores = h2d.shape
    for j in prange(n_cores):
        for i in range(n_samples):
            h = h2d[i, j]
            dh = h - h_cur[j]
            if dh != 0.0 and not diverged[j]:
                delta = 1.0 if dh >= 0.0 else -1.0
                h_eff = h_cur[j] + am[j] * m[j]
                x = h_eff / shape[j]
                m_an = _TWO_OVER_PI * math.atan(x)  # repro-lint: disable=L002 -- deliberate libm: this backend's documented rtol tier (PR 4)
                delta_m = m_an - m[j]
                denominator = one_c[j] * (delta * k_arr[j] - am[j] * delta_m)
                if denominator == 0.0:
                    if delta_m > 0.0:
                        slope = math.inf
                    elif delta_m < 0.0:
                        slope = -math.inf
                    else:
                        slope = 0.0
                else:
                    slope = delta_m / denominator
                if slope < 0.0:
                    negatives[j] += 1
                    if clamp_negative[j]:
                        slope = 0.0
                slope = slope + rev_coeff[j] * (
                    _TWO_OVER_PI / (1.0 + x * x) / shape[j]
                )
                m[j] = m[j] + slope * dh
                steps[j] += 1
                if (
                    math.isnan(m[j])
                    or math.isinf(m[j])
                    or abs(m[j]) > limit[j]
                ):
                    diverged[j] = True
                upd[i, j] = True
            h_cur[j] = h
            m_phys = m[j] * m_sat[j]
            m_out[i, j] = m_phys
            b_out[i, j] = _MU0 * (h + m_phys)


def _time_domain_kernel():
    """Compile (once per process) the fused time-domain series loop."""
    return _compiled("time-domain", time_domain_series_loop)


def _time_domain_parallel_kernel():
    """Compile (once per process) the ``prange`` lane-major variant."""
    return _compiled(
        "time-domain-lanes", time_domain_lane_series_loop, parallel=True
    )


def _time_domain_fused_series(batch, h_arr: np.ndarray):
    """Fused series driver for
    :class:`repro.batch.time_domain.BatchTimeDomainModel`.

    ``h_arr`` arrives validated (1-D or ``(samples, cores)`` float).
    Returns ``(m, b, updated, extras)`` with state and counters
    advanced exactly as per-sample stepping would have advanced them
    (the ``dh != 0`` activity mask and ``steps`` exact, trajectories
    within the backend's rtol tier), or ``None`` to decline a
    configuration the compiled loop does not cover.
    """
    from repro.batch.lanes import as_lane_matrix
    from repro.ja.anhysteretic import ModifiedLangevinAnhysteretic

    curve = batch.anhysteretic
    if type(curve) is not ModifiedLangevinAnhysteretic:
        return None

    n = batch.n_cores
    n_samples = len(h_arr)
    h2d = np.ascontiguousarray(as_lane_matrix(h_arr, n))

    params = batch.params
    am = params.alpha * params.m_sat
    one_c = 1.0 + params.c
    rev_coeff = params.c / one_c
    shape = _lane_array(curve.shape, n, float)
    clamp_negative = _lane_array(batch.guards.clamp_negative, n, bool)

    h_cur = batch.h.copy()
    m = batch.m_normalised
    diverged = batch.diverged.copy()
    m_out = np.empty((n_samples, n))
    b_out = np.empty((n_samples, n))
    updated = np.zeros((n_samples, n), dtype=np.bool_)
    steps = np.zeros(n, dtype=np.int64)
    negatives = np.zeros(n, dtype=np.int64)

    kernel = (
        _time_domain_parallel_kernel()
        if active_threads() > 1
        else _time_domain_kernel()
    )
    kernel(
        h2d,
        am,
        one_c,
        rev_coeff,
        params.k,
        shape,
        clamp_negative,
        batch.divergence_limit,
        params.m_sat,
        h_cur,
        m,
        diverged,
        m_out,
        b_out,
        updated,
        steps,
        negatives,
    )

    batch.commit_fused_series(h_cur, m, diverged, steps, negatives)
    return m_out, b_out, updated, {}
