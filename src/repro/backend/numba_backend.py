"""Optional numba JIT backend (registered only when numba imports).

The backend's value is a **fused series driver** for the timeless
family: the whole ``(samples, cores)`` recurrence runs as one
nopython-compiled double loop — no per-sample ufunc dispatch, no
temporaries — which is exactly the shape the paper's timeless
discretisation compiles to (a pure per-step map).

The compiled loop transliterates the *scalar* fast path of
:func:`repro.core.kernel.step_kernel` (the published SystemC
processes), so its trajectories match the reference backend to within
libm-vs-NumPy rounding — 1 ulp per transcendental call.  That makes
this backend ``exact=False``: the conformance suite holds it to
``rtol`` instead of the bitwise pin.  Discretiser decisions (and hence
``euler_steps``) still match the reference exactly, because the
pending-increment comparison only involves exactly-representable
subtractions of driver samples.

Configurations the compiled loop does not cover — any anhysteretic
curve other than the paper's modified Langevin — are *declined* (the
driver returns ``None``) and the engine falls back to its vectorised
``xp`` loop, which on this backend evaluates through NumPy unchanged.
"""

from __future__ import annotations

import math

import numpy as np

from repro.backend.base import ArrayBackend
from repro.constants import MU0, TWO_OVER_PI


def build_numba_backend() -> "ArrayBackend | None":
    """The numba backend, or ``None`` when numba is not installed."""
    try:
        import numba  # noqa: F401
    except ImportError:  # pragma: no cover - exercised on the numba CI leg
        return None
    return ArrayBackend(
        name="numba",
        xp=np,
        exact=False,
        rtol=1e-9,
        description="numba JIT backend (fused nopython series loop)",
        fused_series={"timeless": _timeless_fused_series},
    )


_KERNEL_CACHE: dict = {}

_TWO_OVER_PI = float(TWO_OVER_PI)
_MU0 = float(MU0)


def timeless_series_loop(
    h2d,
    shape,
    am,
    one_c,
    c_arr,
    k_arr,
    m_sat,
    dhmax,
    accept_equal,
    clamp_negative,
    drop_opposing,
    h_acc,
    m_irr,
    m_tot,
    delta_st,
    m_out,
    b_out,
    man_out,
    upd,
    euler,
    clamped_n,
    dropped_n,
):
    """The fused timeless recurrence as a plain nopython-compilable
    double loop — a transliteration of the scalar fast path of
    :func:`repro.core.kernel.step_kernel` (the published SystemC
    processes), operating on preallocated arrays only.

    Kept importable without numba so the semantics are testable on any
    host; :func:`_timeless_kernel` wraps it in ``numba.njit`` once per
    process when the backend is actually used.
    """
    n_samples, n_cores = h2d.shape
    for i in range(n_samples):
        for j in range(n_cores):
            h = h2d[i, j]
            # core: algebraic refresh at the new field
            m_an = _TWO_OVER_PI * math.atan((h + am[j] * m_tot[j]) / shape[j])
            m_rev = c_arr[j] * m_an / one_c[j]
            # monitorH: the discretiser decision
            dh = h - h_acc[j]
            magnitude = abs(dh)
            if accept_equal[j]:
                accepted = magnitude >= dhmax[j]
            else:
                accepted = magnitude > dhmax[j]
            if accepted:
                # Integral: one guarded Forward Euler step
                delta = 1.0 if dh > 0.0 else -1.0
                delta_m = m_an - (m_rev + m_irr[j])
                denominator = one_c[j] * (delta * k_arr[j] - am[j] * delta_m)
                if denominator == 0.0:
                    if delta_m > 0.0:
                        raw = math.inf
                    elif delta_m < 0.0:
                        raw = -math.inf
                    else:
                        raw = 0.0
                else:
                    raw = delta_m / denominator
                dmdh = raw
                if clamp_negative[j] and not (dmdh > 0.0):
                    dmdh = 0.0
                    if raw != 0.0:
                        clamped_n[j] += 1
                if math.isnan(dmdh):
                    dm = math.nan
                else:
                    dm = dh * dmdh
                    if drop_opposing[j] and dm * dh < 0.0:
                        dm = 0.0
                        dropped_n[j] += 1
                m_irr[j] = m_irr[j] + dm
                h_acc[j] = h
                delta_st[j] = delta
                euler[j] += 1
                upd[i, j] = True
            m_tot[j] = m_rev + m_irr[j]
            man_out[i, j] = m_an
            m_out[i, j] = m_tot[j] * m_sat[j]
            b_out[i, j] = _MU0 * (h + m_sat[j] * m_tot[j])


def _timeless_kernel():
    """Compile (once per process) the fused timeless series loop."""
    kernel = _KERNEL_CACHE.get("timeless")
    if kernel is not None:
        return kernel
    import numba

    kernel = numba.njit(cache=False)(timeless_series_loop)
    _KERNEL_CACHE["timeless"] = kernel
    return kernel


def _lane_array(value, n: int, dtype) -> np.ndarray:
    """Broadcast a scalar-or-array config value to one writable lane array."""
    return np.ascontiguousarray(
        np.broadcast_to(np.asarray(value, dtype=dtype), (n,))
    ).copy()


def _timeless_fused_series(batch, h_arr: np.ndarray):
    """Fused series driver for :class:`repro.batch.engine.BatchTimelessModel`.

    ``h_arr`` arrives validated (1-D or ``(samples, cores)`` float).
    Returns ``(m, b, updated, extras)`` with state and counters advanced
    exactly as per-sample stepping would have advanced them (within the
    backend's rtol tier), or ``None`` to decline a configuration the
    compiled loop does not cover.
    """
    from repro.ja.anhysteretic import ModifiedLangevinAnhysteretic

    curve = batch.anhysteretic
    if type(curve) is not ModifiedLangevinAnhysteretic:
        return None

    from repro.batch.lanes import as_lane_matrix

    n = batch.n_cores
    n_samples = len(h_arr)
    h2d = np.ascontiguousarray(as_lane_matrix(h_arr, n))

    params = batch.params
    am = params.alpha * params.m_sat
    one_c = 1.0 + params.c
    shape = _lane_array(curve.shape, n, float)
    accept_equal = _lane_array(batch.accept_equal, n, bool)
    clamp_negative = _lane_array(batch.guards.clamp_negative, n, bool)
    drop_opposing = _lane_array(batch.guards.drop_opposing, n, bool)

    state = batch.state
    h_acc = state.h_accepted.copy()
    m_irr = state.m_irr.copy()
    m_tot = state.m_total.copy()
    delta_st = state.delta.copy()

    m_out = np.empty((n_samples, n))
    b_out = np.empty((n_samples, n))
    man_out = np.empty((n_samples, n))
    updated = np.zeros((n_samples, n), dtype=np.bool_)
    euler = np.zeros(n, dtype=np.int64)
    clamped_n = np.zeros(n, dtype=np.int64)
    dropped_n = np.zeros(n, dtype=np.int64)

    _timeless_kernel()(
        h2d,
        shape,
        am,
        one_c,
        params.c,
        params.k,
        params.m_sat,
        batch.dhmax,
        accept_equal,
        clamp_negative,
        drop_opposing,
        h_acc,
        m_irr,
        m_tot,
        delta_st,
        m_out,
        b_out,
        man_out,
        updated,
        euler,
        clamped_n,
        dropped_n,
    )

    state.h_applied = h2d[-1].copy()
    state.h_accepted = h_acc
    state.m_irr = m_irr
    state.m_an = man_out[-1].copy()
    state.m_rev = params.c * state.m_an / one_c
    state.m_total = m_tot
    state.delta = delta_st
    state.updates += euler
    counters = batch.counters
    counters.field_events += n_samples
    counters.observations += n_samples
    counters.euler_steps += euler
    counters.acceptances += euler
    counters.clamped_slopes += clamped_n
    counters.dropped_increments += dropped_n

    return m_out, b_out, updated, {"m_an": man_out}
