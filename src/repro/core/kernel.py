"""Pure step kernel: one timeless event as a ``StepInputs -> StepOutputs`` map.

This is the bottom layer of the three-layer architecture:

1. **pure kernel** (this module) — the physics of one field event with
   no state, no classes and no side effects;
2. **stateful scalar wrappers** (:class:`repro.core.integrator.TimelessIntegrator`,
   :class:`repro.core.model.TimelessJAModel`) — thin objects that own a
   :class:`repro.core.state.JAState` and delegate every step here;
3. **batch ensemble engine** (:mod:`repro.batch`) — advances N
   independent cores in lockstep by calling the same kernel with
   struct-of-arrays operands.

One :func:`step_kernel` call covers the three published SystemC
processes for a single new field value:

* ``core`` — the algebraic refresh of ``He``, ``man`` and ``mrev`` at
  the new field (happens on *every* call);
* ``monitorH`` — the discretiser decision: has the pending increment
  ``H - lasth`` exceeded ``dhmax``?
* ``Integral`` — when accepted, one guarded Forward Euler step of the
  irreversible magnetisation, then recombination
  ``m_total = m_rev + m_irr``.

Every operand may be a scalar **or** a NumPy array: scalars take the
same branchy fast path the pre-refactor integrator used (bit-for-bit
identical trajectories), arrays evaluate all lanes with masked
``np.where`` updates such that each lane is bitwise identical to the
corresponding scalar call.  ``params`` may be a
:class:`repro.ja.parameters.JAParameters` or any attribute-compatible
struct-of-arrays (:class:`repro.batch.params.BatchJAParameters`).

The kernel is deliberately free of ``self``: given the same inputs it
returns the same outputs, which is what makes trajectories replayable,
lanes independent, and the whole scheme vectorisable — the same design
probabilistic ODE solver libraries use for their solver steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.slope import SlopeGuards, guarded_slope
from repro.ja.anhysteretic import Anhysteretic
from repro.ja.equations import effective_field, reversible_magnetisation
from repro.ja.parameters import JAParameters


@dataclass(frozen=True, slots=True)
class StepInputs:
    """The part of the model state one step reads.

    All fields are scalars (one core) or same-length arrays (one lane
    per core).  ``delta`` is carried through so unaccepted events leave
    the last direction untouched, exactly like the stateful model.
    """

    h_new: float | np.ndarray
    h_accepted: float | np.ndarray
    m_irr: float | np.ndarray
    m_total: float | np.ndarray
    delta: float | np.ndarray = 0.0


@dataclass(frozen=True, slots=True)
class StepOutputs:
    """Everything one step produces (new state + event bookkeeping).

    Attributes
    ----------
    h_accepted, m_irr, m_rev, m_an, m_total, delta:
        The post-event state fields (``h_applied`` is simply
        ``h_new``, so it is not repeated here).
    accepted:
        Discretiser verdict — True where an Euler step fired.
    dh:
        Pending increment ``h_new - h_accepted_before`` (the published
        ``dh``), regardless of acceptance.
    dmdh, dm, raw_dmdh, clamped, dropped:
        The guarded-slope record of the accepted lanes; zeros / False
        in lanes where no step fired.
    """

    h_accepted: float | np.ndarray
    m_irr: float | np.ndarray
    m_rev: float | np.ndarray
    m_an: float | np.ndarray
    m_total: float | np.ndarray
    delta: float | np.ndarray
    accepted: bool | np.ndarray
    dh: float | np.ndarray
    dmdh: float | np.ndarray
    dm: float | np.ndarray
    raw_dmdh: float | np.ndarray
    clamped: bool | np.ndarray
    dropped: bool | np.ndarray


def discretiser_accepts(
    dh: "float | np.ndarray",
    dhmax: "float | np.ndarray",
    accept_equal: "bool | np.ndarray" = False,
    xp=np,
) -> "bool | np.ndarray":
    """The ``monitorH`` comparison: does the pending increment trigger?

    Strict ``>`` as published; ``accept_equal`` switches to ``>=`` (per
    lane, when given as an array).
    """
    magnitude = abs(dh)
    if np.ndim(accept_equal) == 0:
        if accept_equal:
            return magnitude >= dhmax
        return magnitude > dhmax
    return xp.where(accept_equal, magnitude >= dhmax, magnitude > dhmax)


def refresh_algebraic(
    params: JAParameters,
    anhysteretic: Anhysteretic,
    h_new: "float | np.ndarray",
    m_total: "float | np.ndarray",
) -> "tuple[float | np.ndarray, float | np.ndarray]":
    """The ``core`` process: ``(m_an, m_rev)`` at the new field.

    The effective field is computed from the *previous* total
    magnetisation — the one event of algebraic lag the published code
    has — so this must be evaluated before the Euler decision.
    """
    h_eff = effective_field(params, h_new, m_total)
    m_an = anhysteretic.value(h_eff)
    m_rev = reversible_magnetisation(params, m_an)
    return m_an, m_rev


def step_kernel(
    inputs: StepInputs,
    params: JAParameters,
    anhysteretic: Anhysteretic,
    dhmax: "float | np.ndarray",
    guards: SlopeGuards = SlopeGuards(),
    accept_equal: "bool | np.ndarray" = False,
    xp=np,
) -> StepOutputs:
    """Advance one timeless event: algebraic refresh, discretiser
    decision, guarded Euler step, recombination.

    Pure function — no argument is mutated.  Scalar inputs return
    scalar outputs via the original branchy fast path; array inputs
    return array outputs computed lane-wise with masked updates.
    ``xp`` is the array-backend namespace the vectorised path evaluates
    through (:mod:`repro.backend`; the default — the ``numpy`` module —
    is the exact reference backend, for which the threading changes no
    bits).
    """
    m_an, m_rev = refresh_algebraic(params, anhysteretic, inputs.h_new, inputs.m_total)
    dh = inputs.h_new - inputs.h_accepted
    accepted = discretiser_accepts(dh, dhmax, accept_equal, xp=xp)

    if np.ndim(accepted) == 0 and np.ndim(m_rev) == 0:
        # -- scalar fast path (one core, no array broadcasting cost) ----
        if accepted:
            slope = guarded_slope(
                params, m_an, m_rev + inputs.m_irr, dh, guards=guards
            )
            m_irr = inputs.m_irr + slope.dm
            return StepOutputs(
                h_accepted=inputs.h_new,
                m_irr=m_irr,
                m_rev=m_rev,
                m_an=m_an,
                m_total=m_rev + m_irr,
                delta=1.0 if dh > 0.0 else -1.0,
                accepted=True,
                dh=dh,
                dmdh=slope.dmdh,
                dm=slope.dm,
                raw_dmdh=slope.raw_dmdh,
                clamped=slope.clamped,
                dropped=slope.dropped,
            )
        return StepOutputs(
            h_accepted=inputs.h_accepted,
            m_irr=inputs.m_irr,
            m_rev=m_rev,
            m_an=m_an,
            m_total=m_rev + inputs.m_irr,
            delta=inputs.delta,
            accepted=False,
            dh=dh,
            dmdh=0.0,
            dm=0.0,
            raw_dmdh=0.0,
            clamped=False,
            dropped=False,
        )

    # -- vectorised path: evaluate all lanes, mask the state writes ------
    slope = guarded_slope(
        params, m_an, m_rev + inputs.m_irr, dh, guards=guards, xp=xp
    )
    m_irr = xp.where(accepted, inputs.m_irr + slope.dm, inputs.m_irr)
    return StepOutputs(
        h_accepted=xp.where(accepted, inputs.h_new, inputs.h_accepted),
        m_irr=m_irr,
        m_rev=m_rev,
        m_an=m_an,
        m_total=m_rev + m_irr,
        delta=xp.where(
            accepted, xp.where(dh > 0.0, 1.0, -1.0), inputs.delta
        ),
        accepted=accepted,
        dh=dh,
        dmdh=xp.where(accepted, slope.dmdh, 0.0),
        dm=xp.where(accepted, slope.dm, 0.0),
        raw_dmdh=xp.where(accepted, slope.raw_dmdh, 0.0),
        clamped=accepted & slope.clamped,
        dropped=accepted & slope.dropped,
    )
