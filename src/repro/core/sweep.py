"""Timeless DC-sweep driver.

"For generality, a triangular waveform is used in a DC sweep, i.e.
timeless simulations" — the paper drives H along a piecewise-linear path
and lets the event machinery decide when to integrate.  This module walks
the model along waypoint paths and records the full trajectory together
with a stability audit, which is what every experiment consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.model import TimelessJAModel
from repro.errors import ParameterError


@dataclass(frozen=True)
class SweepResult:
    """Recorded trajectory of one timeless sweep.

    Attributes
    ----------
    h:
        Applied field at every driver sample [A/m].
    m:
        Magnetisation [A/m] after each sample.
    b:
        Flux density [T] after each sample.
    m_an:
        Normalised anhysteretic value after each sample.
    updated:
        Boolean mask: True where an irreversible Euler step fired.
    euler_steps:
        Total accepted Euler steps.
    clamped_slopes:
        Count of guard-1 activations (negative slope clamped).
    dropped_increments:
        Count of guard-2 activations (opposing increment dropped).
    """

    h: np.ndarray
    m: np.ndarray
    b: np.ndarray
    m_an: np.ndarray
    updated: np.ndarray
    euler_steps: int
    clamped_slopes: int
    dropped_increments: int

    def __len__(self) -> int:
        return len(self.h)

    @property
    def finite(self) -> bool:
        """True when the whole trajectory stayed finite."""
        return bool(
            np.isfinite(self.h).all()
            and np.isfinite(self.m).all()
            and np.isfinite(self.b).all()
        )


def waypoint_samples(
    waypoints: Sequence[float], driver_step: float
) -> np.ndarray:
    """Sample a piecewise-linear waypoint path at roughly ``driver_step``.

    Each segment is divided into ``ceil(|span| / driver_step)`` equal
    increments so the endpoints are hit exactly (turning points are where
    the physics happens, so they must be sampled).
    """
    if len(waypoints) < 2:
        raise ParameterError("need at least two waypoints for a sweep")
    if not math.isfinite(driver_step) or driver_step <= 0.0:
        raise ParameterError(f"driver_step must be > 0, got {driver_step!r}")
    samples: list[float] = [float(waypoints[0])]
    for start, stop in zip(waypoints[:-1], waypoints[1:]):
        span = float(stop) - float(start)
        if span == 0.0:
            continue
        count = max(1, int(math.ceil(abs(span) / driver_step)))
        for i in range(1, count + 1):
            samples.append(float(start) + span * i / count)
    return np.array(samples)


def run_sweep(
    model: TimelessJAModel,
    waypoints: Sequence[float],
    driver_step: float | None = None,
    reset: bool = True,
) -> SweepResult:
    """Drive the model along a waypoint path and record everything.

    Parameters
    ----------
    model:
        The timeless model (its ``dhmax`` governs integration accuracy).
    waypoints:
        Field vertices [A/m]; e.g. ``[0, 10e3, -10e3, 10e3]`` for one
        initial-magnetisation rise plus a full major loop.
    driver_step:
        Field spacing of the driver samples.  Defaults to ``dhmax / 4``,
        which exercises the accumulate-until-threshold event semantics
        the SystemC kernel exhibits.  Use ``dhmax`` together with
        ``accept_equal=True`` on the model for exact-``dhmax`` Euler
        steps (convergence studies).
    reset:
        Reset the model to the demagnetised state first (default).  Pass
        False to continue from the current state, e.g. to append minor
        loops after an initial magnetisation sweep.
    """
    if driver_step is None:
        driver_step = model.dhmax / 4.0
    h_samples = waypoint_samples(waypoints, driver_step)
    if reset:
        model.reset(h_initial=float(h_samples[0]))

    counters = model.counters
    steps_before = counters.euler_steps
    clamped_before = counters.clamped_slopes
    dropped_before = counters.dropped_increments

    n = len(h_samples)
    m_out = np.empty(n)
    b_out = np.empty(n)
    man_out = np.empty(n)
    updated = np.zeros(n, dtype=bool)
    for i, h in enumerate(h_samples):
        result = model._integrator.step(float(h))
        updated[i] = result is not None
        m_out[i] = model.m
        b_out[i] = model.b
        man_out[i] = model.state.m_an

    return SweepResult(
        h=h_samples,
        m=m_out,
        b=b_out,
        m_an=man_out,
        updated=updated,
        euler_steps=counters.euler_steps - steps_before,
        clamped_slopes=counters.clamped_slopes - clamped_before,
        dropped_increments=counters.dropped_increments - dropped_before,
    )


def run_sweep_dense(
    model: TimelessJAModel,
    waypoints: Sequence[float],
    reset: bool = True,
) -> SweepResult:
    """Sweep with driver samples exactly ``dhmax`` apart.

    Requires the model to accept increments equal to ``dhmax``
    (``accept_equal=True``); otherwise every sample would accumulate to a
    2*dhmax step and the effective resolution would halve.
    """
    if not model._integrator.discretiser.accept_equal:
        raise ParameterError(
            "run_sweep_dense needs a model built with accept_equal=True"
        )
    return run_sweep(model, waypoints, driver_step=model.dhmax, reset=reset)


def concatenate_sweeps(parts: Sequence[SweepResult]) -> SweepResult:
    """Concatenate trajectory records from consecutive sweeps."""
    if not parts:
        raise ParameterError("no sweep parts to concatenate")
    return SweepResult(
        h=np.concatenate([p.h for p in parts]),
        m=np.concatenate([p.m for p in parts]),
        b=np.concatenate([p.b for p in parts]),
        m_an=np.concatenate([p.m_an for p in parts]),
        updated=np.concatenate([p.updated for p in parts]),
        euler_steps=sum(p.euler_steps for p in parts),
        clamped_slopes=sum(p.clamped_slopes for p in parts),
        dropped_increments=sum(p.dropped_increments for p in parts),
    )
