"""Flux-driven (inverse) timeless JA model.

The forward model maps an applied-field trajectory H(t) to flux density
B.  Many applications are flux-driven instead: a winding excited by a
voltage source imposes ``B = (1/(N*A)) * integral(v dt)`` and asks for
the field (i.e. the magnetising current) that sustains it — the inverse
Jiles-Atherton problem.

The timeless structure carries over directly with the roles swapped:
events fire when the *flux density* has moved by more than ``dbmax``
since the last accepted update.  Each event then **marches** the inner
forward model towards the target in steps of at most ``dhmax`` — never
more — because a single oversized Euler step can cross the pole of the
JA slope denominator (``deltam = k/(alpha*Msat)``) and land on a
non-physical root where a huge magnetisation is balanced by a huge
opposing field.  Walking at the forward model's own quantum keeps every
intermediate state physical; only the final, sub-``dhmax`` partial step
(purely reversible, hence strictly monotone in H) is refined by
bisection.

Consistency with the forward model is by construction: driving a fresh
forward model with the field trajectory the inverse model returns
reproduces the imposed flux within one ``dbmax`` (see the round-trip
tests).
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import DEFAULT_DHMAX
from repro.core.model import TimelessJAModel
from repro.core.slope import SlopeGuards
from repro.errors import ParameterError, SolverError
from repro.ja.anhysteretic import Anhysteretic
from repro.ja.parameters import JAParameters


class FluxDrivenJAModel:
    """Inverse JA model: imposes B, returns H (timeless in B).

    Parameters
    ----------
    params:
        Jiles-Atherton material parameters.
    dbmax:
        Flux-increment threshold [T] between irreversible updates.
        Defaults to the flux-quantum equivalent of the forward model's
        default ``dhmax`` in the steep region (~10 mT).
    dhmax:
        Field-increment threshold of the *inner* forward model [A/m];
        the inverse solve is only as fine as the forward quantisation.
    tolerance:
        Relative tolerance of the scalar solve on B.
    """

    def __init__(
        self,
        params: JAParameters,
        dbmax: float = 0.01,
        dhmax: float = DEFAULT_DHMAX,
        anhysteretic: Anhysteretic | None = None,
        guards: SlopeGuards = SlopeGuards(),
        tolerance: float = 1e-9,
    ) -> None:
        if not math.isfinite(dbmax) or dbmax <= 0.0:
            raise ParameterError(f"dbmax must be finite and > 0, got {dbmax!r}")
        if not 0.0 < tolerance < 1.0:
            raise ParameterError(
                f"tolerance must be in (0, 1), got {tolerance!r}"
            )
        self.dbmax = float(dbmax)
        self.tolerance = float(tolerance)
        # accept_equal so a march step of exactly dhmax fires an event.
        self.forward = TimelessJAModel(
            params,
            dhmax=dhmax,
            anhysteretic=anhysteretic,
            guards=guards,
            accept_equal=True,
        )
        self._b_accepted = 0.0
        #: Scalar-solve statistics.
        self.solves = 0
        self.solve_iterations = 0
        #: Ceiling on march steps per event (a 5 mT event deep in
        #: saturation needs |dB|/(mu0*dhmax) ~ 160 steps at defaults).
        self.max_march_steps = 100_000

    @property
    def params(self) -> JAParameters:
        return self.forward.params

    @property
    def h(self) -> float:
        """Field currently sustaining the imposed flux [A/m]."""
        return self.forward.h

    @property
    def b(self) -> float:
        """Flux density of the committed state [T]."""
        return self.forward.b

    @property
    def m(self) -> float:
        """Magnetisation [A/m]."""
        return self.forward.m

    def reset(self) -> None:
        """Demagnetise."""
        self.forward.reset()
        self._b_accepted = 0.0
        self.solves = 0
        self.solve_iterations = 0

    # -- the inverse event ---------------------------------------------------

    def _probe_b(self, h_trial: float) -> float:
        """B the forward model would output at ``h_trial`` (no commit)."""
        probe = self.forward.clone()
        return probe.apply_field(h_trial)

    def _march_to(self, b_target: float) -> None:
        """Walk the committed forward model to the flux target.

        Full steps of exactly ``dhmax`` (each firing one forward event)
        until the next full step would overshoot; then one bisected
        partial step.  A partial step below ``dhmax`` fires no
        irreversible event — only the reversible component responds —
        which is strictly monotone in H, so the bisection is safe.
        """
        self.solves += 1
        tol = self.tolerance * max(abs(b_target), self.dbmax)
        step = self.forward.dhmax

        for _ in range(self.max_march_steps):
            self.solve_iterations += 1
            b_now = self.forward.b
            error = b_target - b_now
            if abs(error) <= tol:
                return
            direction = 1.0 if error > 0.0 else -1.0
            h_next = self.forward.h + direction * step
            b_next = self._probe_b(h_next)
            overshoot = (b_next - b_target) * direction > 0.0
            if not overshoot:
                self.forward.apply_field(h_next)
                continue
            # Final partial step: bisect dh in (0, step].
            low, high = 0.0, step
            for _ in range(80):
                self.solve_iterations += 1
                mid = 0.5 * (low + high)
                b_mid = self._probe_b(self.forward.h + direction * mid)
                if abs(b_mid - b_target) <= tol:
                    break
                if (b_mid - b_target) * direction > 0.0:
                    high = mid
                else:
                    low = mid
            self.forward.apply_field(self.forward.h + direction * mid)
            return
        raise SolverError(
            f"flux target {b_target!r} not reached within "
            f"{self.max_march_steps} march steps"
        )

    def apply_flux_density(self, b_target: float) -> float:
        """Impose a flux density [T]; returns the sustaining field H.

        Between ``dbmax`` events the committed state is left untouched
        (mirror of the forward model's reversible-only regime); once the
        accumulated flux increment exceeds ``dbmax``, the march brings
        the forward model to the target and commits.
        """
        if not math.isfinite(b_target):
            raise ParameterError(f"b_target must be finite, got {b_target!r}")
        if abs(b_target - self._b_accepted) > self.dbmax:
            self._march_to(b_target)
            self._b_accepted = b_target
        return self.forward.h

    def apply_flux_series(self, b_values) -> np.ndarray:
        """Impose a flux trajectory; returns H after each sample."""
        return np.array(
            [self.apply_flux_density(float(b)) for b in b_values]
        )

    def __repr__(self) -> str:
        return (
            f"FluxDrivenJAModel(params={self.params.name!r}, "
            f"dbmax={self.dbmax}, h={self.h:.6g}, b={self.b:.6g})"
        )
