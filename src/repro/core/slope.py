"""Guarded evaluation of the irreversible magnetisation slope.

The raw Jiles-Atherton slope (``repro.ja.equations.irreversible_slope``)
can turn negative just after a field reversal — a non-physical artefact
the literature has long noted (Brown et al. 2001) — and its denominator
can pass through zero.  The paper hardens the Forward Euler step with two
guards, visible verbatim in the published listing::

    if (dmdh1 > 0.0)  dmdh = dmdh1;  else dmdh = 0.0;   // guard 1
    dm = dh * dmdh;
    if (dm * dh < 0.0) dm = 0.0;                        // guard 2

Guard 1 clamps negative slopes to zero; guard 2 drops any increment that
opposes the direction of the field change.  With guard 1 active guard 2
is mathematically redundant (``dm*dh = dh**2 * dmdh >= 0``), but it
becomes load-bearing when guard 1 is disabled — the ablation experiment
EXP-A1 switches them independently to show this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ja.equations import irreversible_slope
from repro.ja.parameters import JAParameters


@dataclass(frozen=True)
class SlopeGuards:
    """Switchable turning-point guards (both on = the paper's model)."""

    clamp_negative: bool = True
    drop_opposing: bool = True

    @classmethod
    def none(cls) -> "SlopeGuards":
        """Both guards off: the raw (fragile) JA slope."""
        return cls(clamp_negative=False, drop_opposing=False)

    @classmethod
    def paper(cls) -> "SlopeGuards":
        """Both guards on, as in the published listing."""
        return cls()


@dataclass(frozen=True)
class SlopeResult:
    """Outcome of one guarded slope evaluation.

    Attributes
    ----------
    dmdh:
        Slope actually used by the Euler step (after guard 1).
    dm:
        Magnetisation increment actually applied (after guard 2).
    raw_dmdh:
        Unguarded slope, kept for stability accounting.
    clamped:
        True when guard 1 zeroed a negative slope.
    dropped:
        True when guard 2 zeroed an opposing increment.
    """

    dmdh: float
    dm: float
    raw_dmdh: float
    clamped: bool
    dropped: bool


def guarded_slope(
    params: JAParameters,
    m_an: float,
    m_total: float,
    dh: float,
    guards: SlopeGuards = SlopeGuards(),
) -> SlopeResult:
    """Evaluate one guarded Forward Euler increment ``dm`` for field step ``dh``.

    Mirrors the published ``Integral`` process: the direction factor is
    ``delta = sign(dh)``, the raw slope comes from Eq. 1's irreversible
    term, then the two guards are applied in the published order.
    """
    if dh == 0.0:
        return SlopeResult(dmdh=0.0, dm=0.0, raw_dmdh=0.0, clamped=False, dropped=False)
    delta = 1.0 if dh > 0.0 else -1.0
    raw = irreversible_slope(params, m_an, m_total, delta)

    clamped = False
    dmdh = raw
    if guards.clamp_negative and not dmdh > 0.0:
        # The published test is `if (dmdh1 > 0.0)`, so NaN and zero also
        # fall into the clamp branch — preserved deliberately.
        dmdh = 0.0
        clamped = raw != 0.0
    if math.isnan(dmdh):
        # Without guard 1 a NaN slope would poison the state; surface it
        # as an increment the stability audit can count.
        return SlopeResult(
            dmdh=dmdh, dm=math.nan, raw_dmdh=raw, clamped=False, dropped=False
        )

    dm = dh * dmdh
    dropped = False
    if guards.drop_opposing and dm * dh < 0.0:
        dm = 0.0
        dropped = True
    return SlopeResult(dmdh=dmdh, dm=dm, raw_dmdh=raw, clamped=clamped, dropped=dropped)
