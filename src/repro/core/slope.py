"""Guarded evaluation of the irreversible magnetisation slope.

The raw Jiles-Atherton slope (``repro.ja.equations.irreversible_slope``)
can turn negative just after a field reversal — a non-physical artefact
the literature has long noted (Brown et al. 2001) — and its denominator
can pass through zero.  The paper hardens the Forward Euler step with two
guards, visible verbatim in the published listing::

    if (dmdh1 > 0.0)  dmdh = dmdh1;  else dmdh = 0.0;   // guard 1
    dm = dh * dmdh;
    if (dm * dh < 0.0) dm = 0.0;                        // guard 2

Guard 1 clamps negative slopes to zero; guard 2 drops any increment that
opposes the direction of the field change.  With guard 1 active guard 2
is mathematically redundant (``dm*dh = dh**2 * dmdh >= 0``), but it
becomes load-bearing when guard 1 is disabled — the ablation experiment
EXP-A1 switches them independently to show this.

**Ufunc safety.**  :func:`guarded_slope` accepts scalars (the original
fast path, bit-for-bit unchanged) or NumPy arrays for every operand,
including per-member guard flags (see :func:`stack_guards`), in which
case the returned :class:`SlopeResult` carries arrays.  The array path
reproduces the scalar branch structure with masked ``np.where`` selects
so each array lane is bitwise identical to the corresponding scalar
call — the property the batch ensemble engine is built on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ja.equations import irreversible_slope
from repro.ja.parameters import JAParameters


@dataclass(frozen=True, slots=True)
class SlopeGuards:
    """Switchable turning-point guards (both on = the paper's model).

    The flags are plain bools for the scalar model; the batch engine
    passes per-member boolean arrays instead (built by
    :func:`stack_guards`), which the array path of
    :func:`guarded_slope` applies element-wise.
    """

    clamp_negative: bool | np.ndarray = True
    drop_opposing: bool | np.ndarray = True

    @classmethod
    def none(cls) -> "SlopeGuards":
        """Both guards off: the raw (fragile) JA slope."""
        return cls(clamp_negative=False, drop_opposing=False)

    @classmethod
    def paper(cls) -> "SlopeGuards":
        """Both guards on, as in the published listing."""
        return cls()


def stack_guards(guards: Sequence[SlopeGuards]) -> SlopeGuards:
    """Stack per-member guard settings into one array-valued record.

    The result is what a heterogeneous batch ensemble passes to
    :func:`guarded_slope` (via the step kernel) so each member applies
    its own guard combination in the same vectorised call.
    """
    return SlopeGuards(
        clamp_negative=np.array([bool(g.clamp_negative) for g in guards]),
        drop_opposing=np.array([bool(g.drop_opposing) for g in guards]),
    )


def slice_guards(guards: SlopeGuards, start: int, stop: int) -> SlopeGuards:
    """The lane range ``[start, stop)`` of a (possibly array-valued)
    guard record.

    Scalar flags apply to any ensemble width and pass through
    unchanged; array flags are sliced per lane.  Used by the batch
    engines' shard construction (:mod:`repro.parallel`).
    """

    def pick(flag: "bool | np.ndarray") -> "bool | np.ndarray":
        if np.ndim(flag) == 0:
            return flag
        return np.asarray(flag)[start:stop].copy()

    return SlopeGuards(
        clamp_negative=pick(guards.clamp_negative),
        drop_opposing=pick(guards.drop_opposing),
    )


@dataclass(frozen=True, slots=True)
class SlopeResult:
    """Outcome of one guarded slope evaluation.

    Fields are scalars for scalar inputs, arrays (one lane per ensemble
    member) when :func:`guarded_slope` was called with array operands.

    Attributes
    ----------
    dmdh:
        Slope actually used by the Euler step (after guard 1).
    dm:
        Magnetisation increment actually applied (after guard 2).
    raw_dmdh:
        Unguarded slope, kept for stability accounting.
    clamped:
        True when guard 1 zeroed a negative slope.
    dropped:
        True when guard 2 zeroed an opposing increment.
    """

    dmdh: float | np.ndarray
    dm: float | np.ndarray
    raw_dmdh: float | np.ndarray
    clamped: bool | np.ndarray
    dropped: bool | np.ndarray


def guarded_slope(
    params: JAParameters,
    m_an: float,
    m_total: float,
    dh: float,
    guards: SlopeGuards = SlopeGuards(),
    xp=np,
) -> SlopeResult:
    """Evaluate one guarded Forward Euler increment ``dm`` for field step ``dh``.

    Mirrors the published ``Integral`` process: the direction factor is
    ``delta = sign(dh)``, the raw slope comes from Eq. 1's irreversible
    term, then the two guards are applied in the published order.

    Scalar operands take the original scalar fast path; if any operand
    (including the guard flags) is an array, the evaluation is performed
    element-wise and the result fields are arrays.
    """
    if (
        np.ndim(dh) == 0
        and np.ndim(m_an) == 0
        and np.ndim(m_total) == 0
        and np.ndim(params.k) == 0
        and np.ndim(guards.clamp_negative) == 0
    ):
        if dh == 0.0:
            return SlopeResult(
                dmdh=0.0, dm=0.0, raw_dmdh=0.0, clamped=False, dropped=False
            )
        delta = 1.0 if dh > 0.0 else -1.0
        raw = irreversible_slope(params, m_an, m_total, delta)

        clamped = False
        dmdh = raw
        if guards.clamp_negative and not dmdh > 0.0:
            # The published test is `if (dmdh1 > 0.0)`, so NaN and zero also
            # fall into the clamp branch — preserved deliberately.
            dmdh = 0.0
            clamped = raw != 0.0
        if math.isnan(dmdh):
            # Without guard 1 a NaN slope would poison the state; surface it
            # as an increment the stability audit can count.
            return SlopeResult(
                dmdh=dmdh, dm=math.nan, raw_dmdh=raw, clamped=False, dropped=False
            )

        dm = dh * dmdh
        dropped = False
        if guards.drop_opposing and dm * dh < 0.0:
            dm = 0.0
            dropped = True
        return SlopeResult(
            dmdh=dmdh, dm=dm, raw_dmdh=raw, clamped=clamped, dropped=dropped
        )
    return _guarded_slope_array(params, m_an, m_total, dh, guards, xp=xp)


def _guarded_slope_array(
    params: JAParameters,
    m_an: float | np.ndarray,
    m_total: float | np.ndarray,
    dh: float | np.ndarray,
    guards: SlopeGuards,
    xp=np,
) -> SlopeResult:
    """Element-wise :func:`guarded_slope`; lanes match the scalar path
    bitwise on the exact (``xp is numpy``) reference backend."""
    dh = xp.asarray(dh, dtype=float)
    delta = xp.where(dh > 0.0, 1.0, -1.0)
    with np.errstate(invalid="ignore", over="ignore"):
        raw = xp.asarray(
            irreversible_slope(params, m_an, m_total, delta, xp=xp), dtype=float
        )
        # Guard 1 — the published `if (dmdh1 > 0.0)`: NaN and zero also
        # fall into the clamp branch.
        clamp_hit = guards.clamp_negative & ~(raw > 0.0)
        dmdh = xp.where(clamp_hit, 0.0, raw)
        clamped = clamp_hit & (raw != 0.0)
        dm = dh * dmdh
        # Guard 2 — drop increments opposing the field direction.  A NaN
        # product compares False, matching the scalar NaN early-return.
        dropped = guards.drop_opposing & (dm * dh < 0.0)
        dm = xp.where(dropped, 0.0, dm)
    # The scalar path short-circuits dh == 0 to an all-zero result.
    zero = dh == 0.0
    dmdh = xp.where(zero, 0.0, dmdh)
    dm = xp.where(zero, 0.0, dm)
    raw = xp.where(zero, 0.0, raw)
    clamped = clamped & ~zero
    dropped = dropped & ~zero
    return SlopeResult(dmdh=dmdh, dm=dm, raw_dmdh=raw, clamped=clamped, dropped=dropped)
