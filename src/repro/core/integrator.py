"""Timeless Forward Euler integrator — the ``Integral`` process.

One :meth:`TimelessIntegrator.step` call corresponds to one firing of the
published ``core`` process plus, when the discretiser accepts, one firing
of ``monitorH`` and ``Integral``:

1. refresh the algebraic (reversible) quantities at the new field:
   ``He``, ``man``, ``mrev`` — this happens on *every* field change, so
   the reversible magnetisation responds continuously;
2. if the pending increment ``|H - lasth|`` exceeds ``dhmax``, advance
   the irreversible state ``mirr`` by one guarded Forward Euler step in
   H and move ``lasth``;
3. recombine ``m_total = m_rev + m_irr``.

The functional core recombines *after* the irreversible update, whereas
the published event ordering makes the ``B`` output lag the ``mirr``
update by one event.  The SystemC transliteration
(:mod:`repro.hdl.systemc.ja_module`) preserves the published ordering;
experiment EXP-T1 quantifies the (sub-dhmax) difference.

Since the kernel extraction, this class is a *thin stateful wrapper*:
all physics lives in the pure :func:`repro.core.kernel.step_kernel`;
:meth:`TimelessIntegrator.step` only builds the kernel inputs from the
owned :class:`JAState`, writes the outputs back and keeps the event
statistics.  The batch engine (:mod:`repro.batch`) wraps the identical
kernel over arrays, which is what makes scalar and batched trajectories
bitwise interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import DEFAULT_DHMAX
from repro.core.discretiser import FieldDiscretiser
from repro.core.kernel import StepInputs, refresh_algebraic, step_kernel
from repro.core.slope import SlopeGuards, SlopeResult
from repro.core.state import JAState
from repro.ja.anhysteretic import Anhysteretic, make_anhysteretic
from repro.ja.parameters import JAParameters


@dataclass(slots=True)
class IntegratorCounters:
    """Cumulative event statistics for one integrator instance."""

    field_events: int = 0
    euler_steps: int = 0
    clamped_slopes: int = 0
    dropped_increments: int = 0

    def reset(self) -> None:
        self.field_events = 0
        self.euler_steps = 0
        self.clamped_slopes = 0
        self.dropped_increments = 0


class TimelessIntegrator:
    """Integrates the JA magnetisation slope in H, without a time axis.

    Parameters
    ----------
    params:
        Jiles-Atherton material parameters.
    dhmax:
        Field-increment threshold [A/m]; default is the repo-wide
        Figure 1 value.
    anhysteretic:
        Anhysteretic curve; defaults to the paper's modified Langevin
        using ``a2``.
    guards:
        Turning-point guards; default both on (the paper's model).
    accept_equal:
        Forwarded to :class:`FieldDiscretiser` (see there).
    """

    def __init__(
        self,
        params: JAParameters,
        dhmax: float = DEFAULT_DHMAX,
        anhysteretic: Anhysteretic | None = None,
        guards: SlopeGuards = SlopeGuards(),
        accept_equal: bool = False,
    ) -> None:
        self.params = params
        self.anhysteretic = (
            anhysteretic if anhysteretic is not None else make_anhysteretic(params)
        )
        self.guards = guards
        self.discretiser = FieldDiscretiser(dhmax, accept_equal=accept_equal)
        self.state = JAState()
        self.counters = IntegratorCounters()

    @property
    def dhmax(self) -> float:
        return self.discretiser.dhmax

    def clone(self) -> "TimelessIntegrator":
        """Independent copy sharing parameters but not state.

        Used for probe evaluations (circuit Newton trials, inverse
        solves) that must not pollute the committed hysteresis history.
        """
        other = TimelessIntegrator(
            self.params,
            dhmax=self.discretiser.dhmax,
            anhysteretic=self.anhysteretic,
            guards=self.guards,
            accept_equal=self.discretiser.accept_equal,
        )
        other.state = self.state.snapshot()
        return other

    def reset(self, h_initial: float = 0.0, m_irr_initial: float = 0.0) -> None:
        """Return to an initial condition and zero all statistics."""
        self.state.reset(h_initial=h_initial, m_irr_initial=m_irr_initial)
        self.counters.reset()
        self.discretiser.reset_counters()
        # Refresh the algebraic quantities so m_an/m_rev/m_total are
        # consistent with the initial field before the first step.
        self._refresh_algebraic(h_initial)
        self.state.m_total = self.state.m_rev + self.state.m_irr

    def _refresh_algebraic(self, h_new: float) -> None:
        """The ``core`` process: update He, man, mrev at field ``h_new``."""
        state = self.state
        state.m_an, state.m_rev = refresh_algebraic(
            self.params, self.anhysteretic, h_new, state.m_total
        )

    def step(self, h_new: float) -> SlopeResult | None:
        """Apply a new field value; return the slope result if a Euler
        step was taken, else None.

        This is the only way the model advances: there is no notion of
        time anywhere in the call chain.  The physics is one call into
        the pure step kernel; this method just moves state and counters.
        """
        state = self.state
        self.counters.field_events += 1
        state.h_applied = h_new

        out = step_kernel(
            StepInputs(
                h_new=h_new,
                h_accepted=state.h_accepted,
                m_irr=state.m_irr,
                m_total=state.m_total,
                delta=state.delta,
            ),
            self.params,
            self.anhysteretic,
            self.discretiser.dhmax,
            guards=self.guards,
            accept_equal=self.discretiser.accept_equal,
        )

        state.m_an = out.m_an
        state.m_rev = out.m_rev
        state.m_irr = out.m_irr
        state.m_total = out.m_total
        state.h_accepted = out.h_accepted
        state.delta = out.delta

        self.discretiser.record(out.accepted)
        if not out.accepted:
            return None
        state.updates += 1
        self.counters.euler_steps += 1
        if out.clamped:
            self.counters.clamped_slopes += 1
        if out.dropped:
            self.counters.dropped_increments += 1
        return SlopeResult(
            dmdh=out.dmdh,
            dm=out.dm,
            raw_dmdh=out.raw_dmdh,
            clamped=out.clamped,
            dropped=out.dropped,
        )
