"""Timeless Forward Euler integrator — the ``Integral`` process.

One :meth:`TimelessIntegrator.step` call corresponds to one firing of the
published ``core`` process plus, when the discretiser accepts, one firing
of ``monitorH`` and ``Integral``:

1. refresh the algebraic (reversible) quantities at the new field:
   ``He``, ``man``, ``mrev`` — this happens on *every* field change, so
   the reversible magnetisation responds continuously;
2. if the pending increment ``|H - lasth|`` exceeds ``dhmax``, advance
   the irreversible state ``mirr`` by one guarded Forward Euler step in
   H and move ``lasth``;
3. recombine ``m_total = m_rev + m_irr``.

The functional core recombines *after* the irreversible update, whereas
the published event ordering makes the ``B`` output lag the ``mirr``
update by one event.  The SystemC transliteration
(:mod:`repro.hdl.systemc.ja_module`) preserves the published ordering;
experiment EXP-T1 quantifies the (sub-dhmax) difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import DEFAULT_DHMAX
from repro.core.discretiser import FieldDiscretiser
from repro.core.slope import SlopeGuards, SlopeResult, guarded_slope
from repro.core.state import JAState
from repro.ja.anhysteretic import Anhysteretic, make_anhysteretic
from repro.ja.equations import effective_field, reversible_magnetisation
from repro.ja.parameters import JAParameters


@dataclass
class IntegratorCounters:
    """Cumulative event statistics for one integrator instance."""

    field_events: int = 0
    euler_steps: int = 0
    clamped_slopes: int = 0
    dropped_increments: int = 0

    def reset(self) -> None:
        self.field_events = 0
        self.euler_steps = 0
        self.clamped_slopes = 0
        self.dropped_increments = 0


class TimelessIntegrator:
    """Integrates the JA magnetisation slope in H, without a time axis.

    Parameters
    ----------
    params:
        Jiles-Atherton material parameters.
    dhmax:
        Field-increment threshold [A/m]; default is the repo-wide
        Figure 1 value.
    anhysteretic:
        Anhysteretic curve; defaults to the paper's modified Langevin
        using ``a2``.
    guards:
        Turning-point guards; default both on (the paper's model).
    accept_equal:
        Forwarded to :class:`FieldDiscretiser` (see there).
    """

    def __init__(
        self,
        params: JAParameters,
        dhmax: float = DEFAULT_DHMAX,
        anhysteretic: Anhysteretic | None = None,
        guards: SlopeGuards = SlopeGuards(),
        accept_equal: bool = False,
    ) -> None:
        self.params = params
        self.anhysteretic = (
            anhysteretic if anhysteretic is not None else make_anhysteretic(params)
        )
        self.guards = guards
        self.discretiser = FieldDiscretiser(dhmax, accept_equal=accept_equal)
        self.state = JAState()
        self.counters = IntegratorCounters()

    @property
    def dhmax(self) -> float:
        return self.discretiser.dhmax

    def clone(self) -> "TimelessIntegrator":
        """Independent copy sharing parameters but not state.

        Used for probe evaluations (circuit Newton trials, inverse
        solves) that must not pollute the committed hysteresis history.
        """
        other = TimelessIntegrator(
            self.params,
            dhmax=self.discretiser.dhmax,
            anhysteretic=self.anhysteretic,
            guards=self.guards,
            accept_equal=self.discretiser.accept_equal,
        )
        other.state = self.state.snapshot()
        return other

    def reset(self, h_initial: float = 0.0, m_irr_initial: float = 0.0) -> None:
        """Return to an initial condition and zero all statistics."""
        self.state.reset(h_initial=h_initial, m_irr_initial=m_irr_initial)
        self.counters.reset()
        self.discretiser.reset_counters()
        # Refresh the algebraic quantities so m_an/m_rev/m_total are
        # consistent with the initial field before the first step.
        self._refresh_algebraic(h_initial)
        self.state.m_total = self.state.m_rev + self.state.m_irr

    def _refresh_algebraic(self, h_new: float) -> None:
        """The ``core`` process: update He, man, mrev at field ``h_new``."""
        state = self.state
        h_eff = effective_field(self.params, h_new, state.m_total)
        state.m_an = self.anhysteretic.value(h_eff)
        state.m_rev = reversible_magnetisation(self.params, state.m_an)

    def step(self, h_new: float) -> SlopeResult | None:
        """Apply a new field value; return the slope result if a Euler
        step was taken, else None.

        This is the only way the model advances: there is no notion of
        time anywhere in the call chain.
        """
        state = self.state
        self.counters.field_events += 1
        state.h_applied = h_new

        self._refresh_algebraic(h_new)

        decision = self.discretiser.observe(h_new, state.h_accepted)
        result: SlopeResult | None = None
        if decision.accepted:
            m_candidate = state.m_rev + state.m_irr
            result = guarded_slope(
                self.params,
                state.m_an,
                m_candidate,
                decision.dh,
                guards=self.guards,
            )
            state.m_irr += result.dm
            state.h_accepted = h_new
            state.delta = 1.0 if decision.dh > 0.0 else -1.0
            state.updates += 1
            self.counters.euler_steps += 1
            if result.clamped:
                self.counters.clamped_slopes += 1
            if result.dropped:
                self.counters.dropped_increments += 1

        state.m_total = state.m_rev + state.m_irr
        return result
