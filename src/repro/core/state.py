"""Shared Jiles-Atherton model state.

The published SystemC module keeps its state in member variables that the
three processes (``core``, ``monitorH``, ``Integral``) read and write.
:class:`JAState` is the functional-core equivalent: a small mutable record
with an explicit :meth:`snapshot` for trajectory recording.  It is
slotted — one instance is touched on every step of the hot path, and the
batch engine keeps the same fields as arrays
(:class:`repro.batch.engine.BatchState`) instead of N of these.

All magnetisations are *normalised* (``m = M / Msat``), matching the
published code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(slots=True)
class JAState:
    """Mutable state of one timeless JA model instance.

    Attributes
    ----------
    h_applied:
        Most recently applied field H [A/m] (the module input).
    h_accepted:
        Field value at the last *accepted* irreversible update — the
        published ``lasth``.  ``h_applied - h_accepted`` is the pending
        increment the discretiser watches.
    m_irr:
        Irreversible magnetisation state variable (normalised), advanced
        by Forward Euler in H.
    m_rev:
        Reversible component ``c * man / (1 + c)`` (normalised), refreshed
        algebraically on every field change.
    m_an:
        Anhysteretic value at the current effective field (normalised).
    m_total:
        Total normalised magnetisation ``m_rev + m_irr``.
    delta:
        Field direction of the last accepted update: +1 rising, -1
        falling, 0 before the first update.
    updates:
        Number of accepted irreversible updates so far.
    """

    h_applied: float = 0.0
    h_accepted: float = 0.0
    m_irr: float = 0.0
    m_rev: float = 0.0
    m_an: float = 0.0
    m_total: float = 0.0
    delta: float = 0.0
    updates: int = 0

    def snapshot(self) -> "JAState":
        """Return an independent copy (for recording trajectories)."""
        return replace(self)

    def is_finite(self) -> bool:
        """True when every float member is finite (divergence check)."""
        return all(
            math.isfinite(value)
            for value in (
                self.h_applied,
                self.h_accepted,
                self.m_irr,
                self.m_rev,
                self.m_an,
                self.m_total,
            )
        )

    def reset(self, h_initial: float = 0.0, m_irr_initial: float = 0.0) -> None:
        """Return to the demagnetised (or a given) initial condition."""
        self.h_applied = h_initial
        self.h_accepted = h_initial
        self.m_irr = m_irr_initial
        self.m_rev = 0.0
        self.m_an = 0.0
        self.m_total = m_irr_initial
        self.delta = 0.0
        self.updates = 0
