"""The paper's contribution: timeless discretisation of the JA slope.

The magnetisation slope ``dM/dH`` is integrated with Forward Euler *in
the field variable H* — not in time — inside an independent process that
fires whenever the applied field has moved by more than ``dhmax`` since
the last accepted update.  The analogue solver (or any time axis at all)
is never involved, which is what makes the scheme immune to the
turning-point discontinuities that break time-based integration.

Module map (mirroring the three processes of the published SystemC code):

* :mod:`repro.core.kernel` — the **pure step kernel**: one field event
  as a side-effect-free ``StepInputs -> StepOutputs`` function over
  scalar or array operands (all three processes in one call; the layer
  the stateful wrappers and the batch engine share);
* :mod:`repro.core.discretiser` — the ``monitorH`` process: decides when
  the field has moved enough to warrant an irreversible update;
* :mod:`repro.core.slope` — the guarded slope evaluation inside
  ``Integral`` (non-negative clamp, opposing-increment drop);
* :mod:`repro.core.integrator` — the ``Integral`` process: one Forward
  Euler step in H;
* :mod:`repro.core.state` — the state shared by the processes (the
  ``core`` process's members);
* :mod:`repro.core.model` — a user-facing facade combining them;
* :mod:`repro.core.sweep` — timeless DC-sweep driver and trajectory
  recording.
"""

from repro.core.demagnetise import demagnetisation_schedule, demagnetise
from repro.core.discretiser import FieldDiscretiser
from repro.core.integrator import IntegratorCounters, TimelessIntegrator
from repro.core.inverse import FluxDrivenJAModel
from repro.core.kernel import StepInputs, StepOutputs, step_kernel
from repro.core.model import TimelessJAModel
from repro.core.slope import SlopeGuards, guarded_slope, stack_guards
from repro.core.state import JAState
from repro.core.sweep import SweepResult, run_sweep, run_sweep_dense

__all__ = [
    "FieldDiscretiser",
    "FluxDrivenJAModel",
    "IntegratorCounters",
    "JAState",
    "SlopeGuards",
    "StepInputs",
    "StepOutputs",
    "SweepResult",
    "TimelessJAModel",
    "TimelessIntegrator",
    "demagnetisation_schedule",
    "demagnetise",
    "guarded_slope",
    "run_sweep",
    "run_sweep_dense",
    "stack_guards",
    "step_kernel",
]
