"""Demagnetisation procedure (deperm).

The standard way to return a hysteretic core to (near) zero remanence
without heating it past the Curie point: cycle the field with a slowly
decaying amplitude so the state spirals down nested minor loops to the
origin.  This is the physical procedure behind the Figure 1 sweep shape
and a natural application of the timeless model — the whole procedure
is a single waypoint schedule.
"""

from __future__ import annotations

import math

from repro.core.model import TimelessJAModel
from repro.core.sweep import SweepResult, run_sweep
from repro.errors import ParameterError
from repro.waveforms.sweeps import decaying_triangle_waypoints


def demagnetisation_schedule(
    start_amplitude: float,
    steps: int = 40,
    decay: float = 0.85,
) -> list[float]:
    """Waypoints of a geometric-decay deperm cycle.

    Amplitude shrinks by ``decay`` each half-cycle pair until ``steps``
    amplitudes have been emitted; a final return to zero closes it.
    """
    if not math.isfinite(start_amplitude) or start_amplitude <= 0.0:
        raise ParameterError(
            f"start_amplitude must be > 0, got {start_amplitude!r}"
        )
    if not 0.0 < decay < 1.0:
        raise ParameterError(f"decay must be in (0, 1), got {decay!r}")
    if steps < 2:
        raise ParameterError(f"steps must be >= 2, got {steps}")
    amplitudes = [start_amplitude * decay**i for i in range(steps)]
    waypoints = decaying_triangle_waypoints(amplitudes)
    waypoints.append(0.0)
    return waypoints


def demagnetise(
    model: TimelessJAModel,
    start_amplitude: float,
    steps: int = 40,
    decay: float = 0.85,
    driver_step: float | None = None,
) -> SweepResult:
    """Run a deperm cycle from the model's current state.

    Returns the recorded sweep; afterwards the model's remanent flux is
    a small fraction of what it was (how small depends on ``decay`` and
    ``steps`` — see the tests for measured figures).  The model state is
    *not* reset first: demagnetising an already-magnetised core is the
    point.
    """
    waypoints = demagnetisation_schedule(
        start_amplitude, steps=steps, decay=decay
    )
    # Start the schedule from wherever the model currently sits.
    waypoints[0] = model.h
    return run_sweep(model, waypoints, driver_step=driver_step, reset=False)
