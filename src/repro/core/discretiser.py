"""Field-increment discretiser — the ``monitorH`` process.

"Timeless" means the independent variable of the integration is the
applied field H itself.  The discretiser decides when H has moved far
enough from the last accepted value to justify one Forward Euler step;
between accepted updates the pending increment simply accumulates, so
the scheme is insensitive to how finely the driver happens to sample H
(a property the event-driven SystemC implementation gets for free and
which this class reproduces exactly)::

    dh = H - lasth;
    if (fabs(dh) > dhmax) { deltah = dh; lasth = H; trig = 1; }

The comparison is strictly ``>`` in the published code.  For convergence
studies it is convenient to accept increments exactly equal to
``dhmax`` (so a driver stepping in ``dhmax`` quanta yields Euler steps of
exactly ``dhmax``); ``accept_equal=True`` enables that variant.

The comparison itself is the pure function
:func:`repro.core.kernel.discretiser_accepts` (shared with the batch
engine); this class adds the parameter validation and the
observation/acceptance statistics the stateful model reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.kernel import discretiser_accepts
from repro.errors import ParameterError


@dataclass(frozen=True, slots=True)
class DiscretiserDecision:
    """Outcome of observing one new field value."""

    accepted: bool
    dh: float


class FieldDiscretiser:
    """Decides when the pending field increment triggers an update.

    Parameters
    ----------
    dhmax:
        Field-increment threshold [A/m] (must be > 0).  Smaller values
        give finer integration and more events.
    accept_equal:
        When True, an increment of exactly ``dhmax`` is accepted
        (``>=``); the published code uses strict ``>``.
    """

    def __init__(self, dhmax: float, accept_equal: bool = False) -> None:
        if not math.isfinite(dhmax) or dhmax <= 0.0:
            raise ParameterError(f"dhmax must be finite and > 0, got {dhmax!r}")
        self.dhmax = float(dhmax)
        self.accept_equal = bool(accept_equal)
        self.observations = 0
        self.acceptances = 0

    def observe(self, h_new: float, h_accepted: float) -> DiscretiserDecision:
        """Observe a new applied field against the last accepted one."""
        dh = h_new - h_accepted
        accepted = bool(discretiser_accepts(dh, self.dhmax, self.accept_equal))
        self.record(accepted)
        return DiscretiserDecision(accepted=accepted, dh=dh)

    def record(self, accepted: bool) -> None:
        """Account for one observation whose decision was made elsewhere
        (the integrator delegates the comparison to the step kernel)."""
        self.observations += 1
        if accepted:
            self.acceptances += 1

    def reset_counters(self) -> None:
        """Zero the observation/acceptance statistics."""
        self.observations = 0
        self.acceptances = 0

    def __repr__(self) -> str:
        op = ">=" if self.accept_equal else ">"
        return f"FieldDiscretiser(|dh| {op} {self.dhmax})"
