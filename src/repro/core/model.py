"""User-facing facade over the timeless JA integrator.

:class:`TimelessJAModel` is the object downstream code (examples,
magnetic components, experiments) talks to.  It exposes physical
quantities — magnetisation in A/m and flux density in Tesla — while the
internals carry the normalised magnetisation of the published code.

Typical use::

    from repro import TimelessJAModel
    from repro.ja import PAPER_PARAMETERS

    model = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
    for h in field_samples:
        model.apply_field(h)
        record(h, model.b)
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Sequence

import numpy as np

from repro.constants import DEFAULT_DHMAX, MU0
from repro.core.integrator import IntegratorCounters, TimelessIntegrator
from repro.core.slope import SlopeGuards
from repro.core.state import JAState
from repro.ja.anhysteretic import Anhysteretic
from repro.ja.equations import flux_density
from repro.ja.parameters import JAParameters, get_preset


class TimelessJAModel:
    """Ferromagnetic core hysteresis model with timeless slope integration.

    Parameters mirror :class:`repro.core.integrator.TimelessIntegrator`.
    """

    def __init__(
        self,
        params: JAParameters,
        dhmax: float = DEFAULT_DHMAX,
        anhysteretic: Anhysteretic | None = None,
        guards: SlopeGuards = SlopeGuards(),
        accept_equal: bool = False,
    ) -> None:
        self._integrator = TimelessIntegrator(
            params,
            dhmax=dhmax,
            anhysteretic=anhysteretic,
            guards=guards,
            accept_equal=accept_equal,
        )
        self._integrator.reset()

    @classmethod
    def from_preset(cls, name: str, **kwargs) -> "TimelessJAModel":
        """Build a model from a named parameter preset (see ``repro.ja``)."""
        return cls(get_preset(name), **kwargs)

    def clone(self) -> "TimelessJAModel":
        """Independent copy of the model including its hysteresis state.

        Probe clones let solvers evaluate "what would B be at this H"
        without committing the excursion to the history.
        """
        other = object.__new__(TimelessJAModel)
        other._integrator = self._integrator.clone()
        return other

    def snapshot(self):
        """Opaque copy of the full mutable state, counters included.

        Together with :meth:`restore` this is the protocol's speculative
        excursion bracket (:class:`repro.models.protocol.HysteresisModel`):
        a restored model retraces exactly what it would have produced
        had the excursion never happened.
        """
        integ = self._integrator
        return (
            integ.state.snapshot(),
            replace(integ.counters),
            integ.discretiser.observations,
            integ.discretiser.acceptances,
        )

    def restore(self, snap) -> None:
        """Return to a previously taken :meth:`snapshot` exactly."""
        state, counters, observations, acceptances = snap
        integ = self._integrator
        integ.state = state.snapshot()
        integ.counters = replace(counters)
        integ.discretiser.observations = observations
        integ.discretiser.acceptances = acceptances

    # -- state access -----------------------------------------------------

    @property
    def params(self) -> JAParameters:
        return self._integrator.params

    @property
    def state(self) -> JAState:
        """The live internal state (mutable; snapshot before storing)."""
        return self._integrator.state

    @property
    def counters(self) -> IntegratorCounters:
        return self._integrator.counters

    @property
    def dhmax(self) -> float:
        return self._integrator.dhmax

    @property
    def h(self) -> float:
        """Currently applied field [A/m]."""
        return self._integrator.state.h_applied

    @property
    def m_normalised(self) -> float:
        """Total magnetisation normalised by Msat (the published ``mtotal``)."""
        return self._integrator.state.m_total

    @property
    def m(self) -> float:
        """Total magnetisation M [A/m]."""
        return self._integrator.state.m_total * self.params.m_sat

    @property
    def b(self) -> float:
        """Flux density B = mu0 * (H + M) [T]."""
        state = self._integrator.state
        return flux_density(self.params, state.h_applied, state.m_total)

    @property
    def mu_r(self) -> float:
        """Relative amplitude permeability B / (mu0 * H); inf at H = 0."""
        h = self.h
        if h == 0.0:
            return float("inf")
        return self.b / (MU0 * h)

    # -- stepping ---------------------------------------------------------

    def reset(self, h_initial: float = 0.0, m_irr_initial: float = 0.0) -> None:
        """Return to the demagnetised (or given) initial condition."""
        self._integrator.reset(h_initial=h_initial, m_irr_initial=m_irr_initial)

    def apply_field(self, h: float) -> float:
        """Apply a new field value [A/m] and return the updated B [T]."""
        self._integrator.step(h)
        return self.b

    def apply_field_series(self, h_values: Iterable[float]) -> np.ndarray:
        """Apply a sequence of field values; return B [T] after each.

        An ndarray input is routed through the batch engine (a one-core
        ensemble sharing this model's state — bitwise identical, see
        :mod:`repro.batch`); other iterables take a preallocated scalar
        loop.
        """
        if isinstance(h_values, np.ndarray) and h_values.ndim == 1:
            return self._series_via_batch(h_values)[2]
        h_arr = np.fromiter((float(h) for h in h_values), dtype=float)
        b_out = np.empty_like(h_arr)
        step = self._integrator.step
        for i, h in enumerate(h_arr):
            step(float(h))
            b_out[i] = self.b
        return b_out

    def trace(
        self, h_values: Sequence[float]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply a field series and return ``(h, m, b)`` arrays.

        ``m`` is in A/m.  Convenience wrapper used by analysis helpers
        that need magnetisation as well as flux density.  ndarray input
        goes through the batch engine, like :meth:`apply_field_series`.
        """
        if isinstance(h_values, np.ndarray) and h_values.ndim == 1:
            return self._series_via_batch(h_values)
        h_arr = np.fromiter((float(h) for h in h_values), dtype=float)
        m_out = np.empty_like(h_arr)
        b_out = np.empty_like(h_arr)
        step = self._integrator.step
        for i, h in enumerate(h_arr):
            step(float(h))
            m_out[i] = self.m
            b_out[i] = self.b
        return h_arr, m_out, b_out

    def _series_via_batch(
        self, h_values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run a field series as a one-core batch ensemble.

        The batch engine adopts this model's live state, advances it
        through the pure step kernel, and writes the state and counters
        back — so mixing scalar stepping and series calls stays exact.
        """
        from repro.batch.engine import BatchTimelessModel

        batch = BatchTimelessModel.from_scalar_models([self])
        h_arr, m_out, b_out = batch.trace(np.asarray(h_values, dtype=float))
        batch.write_back_to_models([self])
        return h_arr, m_out[:, 0], b_out[:, 0]

    def __repr__(self) -> str:
        return (
            f"TimelessJAModel(params={self.params.name!r}, "
            f"dhmax={self.dhmax}, h={self.h:.6g}, b={self.b:.6g})"
        )
