#!/usr/bin/env python3
"""Sharded sweep: drive one ensemble across every CPU, bit for bit.

Walks the parallel layer bottom-up: plan the shards, run one ensemble
through the multiprocessing executor, verify the reassembled result is
bitwise identical to the single-process run, then scale up to a
scenario grid (families x scenarios x amplitudes) streamed through one
worker pool.  Honest timing included — on a single-core box the
sharded run is expected to tie, not win; the point here is the bitwise
contract and the API.

Usage::

    python examples/sharded_sweep.py
"""

import time

import numpy as np

from repro.batch.sweep import run_batch_series
from repro.models.registry import get_family
from repro.parallel import (
    EnsembleSpec,
    available_cpus,
    plan_shards,
    resolve_workers,
    run_scenario_grid,
    run_sharded,
)
from repro.scenarios import scenario_samples


def main() -> None:
    workers = resolve_workers(None)
    print(f"host: {available_cpus()} CPU(s), using {workers} worker(s)")

    # 1. The plan: contiguous lane ranges, balanced to within one lane.
    n_cores = 128
    print(f"\nplan_shards({n_cores}, {workers}) ->",
          plan_shards(n_cores, workers))

    # 2. One sharded run vs the single-process executor it splits up.
    family = get_family("timeless")
    batch = family.make_batch(n_cores, seed=0)
    h = scenario_samples("minor-loop-ladder", 10e3, 100.0)

    start = time.perf_counter()
    reference = run_batch_series(batch, h)
    single_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded = run_sharded(batch, h, n_workers=workers)
    sharded_s = time.perf_counter() - start

    exact = (
        np.array_equal(reference.m, sharded.m)
        and np.array_equal(reference.b, sharded.b)
        and all(
            np.array_equal(reference.counters[k], sharded.counters[k])
            for k in reference.counters
        )
    )
    print(f"\n{n_cores} cores x {len(h)} samples:")
    print(f"  single-process {single_s:.3f} s, sharded {sharded_s:.3f} s "
          f"({single_s / max(sharded_s, 1e-12):.2f}x)")
    print(f"  bitwise identical reassembly: {exact}")

    # 3. Workers can also rebuild the ensemble themselves from a
    # registry recipe — no live models cross the process boundary.
    spec = EnsembleSpec(family="timeless", n_cores=n_cores, seed=0)
    from_spec = run_sharded(spec, h, n_workers=workers)
    print(f"  spec route matches: {np.array_equal(from_spec.m, reference.m)}")

    # 4. A whole campaign: families x scenarios x amplitudes, every cell
    # itself sharded, all cells streamed through one pool.
    cells = run_scenario_grid(
        families=["timeless", "time-domain"],
        scenarios=["major-loop", "inrush", "harmonic"],
        h_max_values=[5e3, 10e3],
        n_cores=32,
        driver_step=100.0,
        n_workers=workers,
    )
    print(f"\nscenario grid: {len(cells)} cells")
    for cell in cells:
        finite = int(cell.result.finite_lanes.sum())
        print(f"  {cell.family:12s} {cell.scenario:12s} "
              f"h_max={cell.h_max:8.0f}  finite lanes {finite}/32")


if __name__ == "__main__":
    main()
