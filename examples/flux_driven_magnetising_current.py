#!/usr/bin/env python3
"""Flux-driven operation: the magnetising current of a voltage-fed core.

A winding across a stiff sinusoidal voltage has its flux *imposed*
(Faraday: B = integral(v)/N/A); the core then draws whatever field —
i.e. magnetising current — the hysteresis demands.  This script imposes
a sinusoidal B and plots the sharply peaked, distorted H waveform the
inverse timeless model recovers, plus the B-H trajectory it traces.

Usage::

    python examples/flux_driven_magnetising_current.py
"""

import numpy as np

from repro import PAPER_PARAMETERS
from repro.core import FluxDrivenJAModel
from repro.io import AsciiPlot, TextTable


def main() -> None:
    inverse = FluxDrivenJAModel(PAPER_PARAMETERS, dbmax=0.005, dhmax=25.0)

    cycles = 2
    samples = 250 * cycles
    phase = np.linspace(0.0, 2.0 * np.pi * cycles, samples)
    b_imposed = 1.2 * np.sin(phase)
    h_recovered = inverse.apply_flux_series(b_imposed)

    # Settled cycle statistics.
    tail = slice(-250, None)
    h_cycle = h_recovered[tail]
    crest = np.max(np.abs(h_cycle)) / np.sqrt(np.mean(h_cycle**2))

    table = TextTable(["quantity", "value"], title="Flux-driven summary")
    table.add_row("imposed B peak [T]", 1.2)
    table.add_row("recovered H peak [A/m]", float(np.max(np.abs(h_cycle))))
    table.add_row("H crest factor (sine = 1.414)", float(crest))
    table.add_row("march solves", inverse.solves)
    print(table.render())
    print()

    print("Imposed flux (s) and recovered field (h), settled cycle:")
    plot = AsciiPlot(width=79, height=23)
    t = np.arange(250) / 250.0
    plot.add_series(t, b_imposed[tail] / 1.2, marker="s")
    plot.add_series(t, h_cycle / np.max(np.abs(h_cycle)), marker="h")
    print(plot.render(x_label="t / T", y_label="normalised"))
    print()

    print("Traced B-H loop (flux-driven):")
    loop = AsciiPlot(width=79, height=23)
    loop.add_series(h_recovered / 1000.0, b_imposed)
    print(loop.render(x_label="H [kA/m]", y_label="B [T]"))


if __name__ == "__main__":
    main()
