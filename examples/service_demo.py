#!/usr/bin/env python3
"""Hysteresis-as-a-service: warm pool, content-addressed cache, async.

Walks the service layer top-down: start one `HysteresisService` (the
worker pool forks once, with fused JIT kernels pre-warmed in the
parent so forked children inherit them compiled), submit requests
synchronously and asynchronously, watch identical requests coalesce
into one computation, stream a scenario grid as its cells land, and
re-run the whole grid to see the content-addressed cache serve pass 2
outright.  Honest notes included: on a single-core box the pool falls
back to the serial executor — the caching and coalescing behaviour is
identical, only the spin-up saving is invisible.

Usage::

    python examples/service_demo.py
"""

import asyncio
import time

import numpy as np

from repro.batch.sweep import run_batch_series
from repro.models.registry import get_family
from repro.parallel import run_scenario_grid
from repro.parallel.spec import DriveSpec, EnsembleSpec
from repro.service import HysteresisService

N_CORES = 64


def main() -> None:
    family = get_family("timeless")
    spec = EnsembleSpec(family="timeless", n_cores=N_CORES, seed=42)
    step = float(spec.build_batch().driver_step_hint())
    drive = DriveSpec(
        scenario="major-loop", h_max=float(family.h_scale), driver_step=step
    )

    # One service for the whole session: the pool outlives every
    # campaign below.  cache_dir= would additionally spill every result
    # to disk (results/cache/) so the NEXT process starts warm too.
    with HysteresisService() as service:
        print(
            f"service up: {service.pool.n_workers} worker(s), "
            f"start method {service.pool.start_method}, "
            f"warmed kernels: {list(service.pool.warmed) or 'none (numpy only)'}"
        )

        # -- synchronous: miss, then hit ------------------------------
        start = time.perf_counter()
        first = service.run(spec, drive)
        miss_seconds = time.perf_counter() - start
        start = time.perf_counter()
        second = service.run(spec, drive)
        hit_seconds = time.perf_counter() - start
        print(
            f"first request (miss): {miss_seconds:.4f} s; repeat (hit): "
            f"{hit_seconds:.6f} s — same frozen object: {second is first}"
        )

        # The cached result is byte-identical to a fresh single-process
        # run — the bitwise pins (PRs 3/6) are what make caching honest.
        reference = run_batch_series(
            spec.build_batch(), drive.full_samples(N_CORES)
        )
        print(
            "cache vs fresh run_batch_series bitwise:",
            np.array_equal(first.m, reference.m)
            and np.array_equal(first.b, reference.b),
        )

        # -- async: futures, coalescing, streaming grids --------------
        async def async_tour():
            # Ten identical submissions: the in-flight coalescer runs
            # ONE computation and hands every future the same entry.
            other = DriveSpec(
                scenario="harmonic",
                h_max=float(family.h_scale),
                driver_step=step,
            )
            futures = [service.submit(spec, other) for _ in range(10)]
            results = await asyncio.gather(*futures)
            print(
                "10 concurrent identical submissions ->",
                f"{len({id(r) for r in results})} computation(s)",
            )

            # Cells stream back as they land (hits first, typically).
            async for cell in service.stream_grid(
                ["timeless", "preisach"],
                ["major-loop"],
                [family.h_scale, family.h_scale / 2],
                N_CORES,
                seed=42,
                driver_step=step,
            ):
                print(f"  cell landed: {cell.family} h_max={cell.h_max:g}")

        asyncio.run(async_tour())

        # -- the repeated grid: pass 2 is all cache hits --------------
        grid_args = (
            ["timeless", "preisach", "time-domain"],
            ["major-loop", "harmonic"],
            [family.h_scale, family.h_scale / 2],
            N_CORES,
        )
        start = time.perf_counter()
        pass1 = run_scenario_grid(
            *grid_args, seed=42, driver_step=step, service=service
        )
        pass1_seconds = time.perf_counter() - start
        start = time.perf_counter()
        pass2 = run_scenario_grid(
            *grid_args, seed=42, driver_step=step, service=service
        )
        pass2_seconds = time.perf_counter() - start
        assert all(a.result is b.result for a, b in zip(pass1, pass2))
        print(
            f"grid pass 1: {pass1_seconds:.3f} s ({len(pass1)} cells); "
            f"pass 2: {pass2_seconds:.4f} s — "
            f"{pass1_seconds / max(pass2_seconds, 1e-9):.0f}x, all served "
            "from the cache"
        )
        print("cache stats:", service.cache.stats)


if __name__ == "__main__":
    main()
