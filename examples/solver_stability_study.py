#!/usr/bin/env python3
"""Why "timeless"? A stability study of four JA formulations.

Drives the same major hysteresis loop through:

1. the paper's timeless model (Forward Euler in H, event-driven);
2. the VHDL-AMS 'INTEG formulation on the analogue solver (the
   approach of the paper's references [4, 5]);
3. naive explicit time stepping of dM/dt (forward Euler and RK4).

and prints a side-by-side of completion, solver distress and
non-physical behaviour.  This is the paper's core argument as a
runnable script.

Usage::

    python examples/solver_stability_study.py
"""

import time

from repro import PAPER_PARAMETERS, TimelessJAModel, run_sweep
from repro.analysis import audit_trajectory
from repro.baselines import TimeDomainJAModel
from repro.core.slope import SlopeGuards
from repro.hdl.vhdlams import (
    IntegJAArchitecture,
    SolverOptions,
    TransientSolver,
)
from repro.io import TextTable
from repro.waveforms import TriangularWave, major_loop_waypoints

H_MAX = 10e3
PERIOD = 10e-3


def run_timeless() -> tuple[str, dict]:
    start = time.perf_counter()
    model = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
    sweep = run_sweep(model, major_loop_waypoints(H_MAX, cycles=1))
    elapsed = time.perf_counter() - start
    audit = audit_trajectory(sweep.h, sweep.b)
    return "timeless (paper)", {
        "completed": True,
        "retrace_mT": audit.monotonicity_depth * 1e3,
        "solver distress": "none",
        "wall_s": elapsed,
    }


def run_integ_ams() -> tuple[str, dict]:
    wave = TriangularWave(H_MAX, PERIOD)
    arch = IntegJAArchitecture(PAPER_PARAMETERS, wave)
    solver = TransientSolver(
        arch.system, SolverOptions(dt_initial=1e-6, dt_max=5e-5)
    )
    start = time.perf_counter()
    result = solver.run(t_stop=1.25 * PERIOD)
    elapsed = time.perf_counter() - start
    report = result.report
    audit = audit_trajectory(result.of(arch.q_h), result.of(arch.q_b))
    distress = (
        f"{report.newton_failures} NR failures, "
        f"{report.floor_hits} floor hits"
    )
    return "'INTEG on analogue solver", {
        "completed": not report.gave_up,
        "retrace_mT": audit.monotonicity_depth * 1e3,
        "solver distress": distress,
        "wall_s": elapsed,
    }


def run_explicit(method: str) -> tuple[str, dict]:
    wave = TriangularWave(H_MAX, PERIOD)
    model = TimeDomainJAModel(PAPER_PARAMETERS, guards=SlopeGuards.none())
    start = time.perf_counter()
    result = model.run(wave, t_stop=1.25 * PERIOD, dt=PERIOD / 400, method=method)
    elapsed = time.perf_counter() - start
    audit = audit_trajectory(result.h, result.b)
    return f"dM/dt explicit {method}", {
        "completed": result.completed,
        "retrace_mT": audit.monotonicity_depth * 1e3,
        "solver distress": (
            f"{result.negative_slope_evaluations} negative-slope evals"
        ),
        "wall_s": elapsed,
    }


def main() -> None:
    table = TextTable(
        ["formulation", "completed", "B retrace [mT]", "solver distress", "wall [s]"],
        title=f"One major loop to +/-{H_MAX:.0f} A/m",
    )
    for name, row in (
        run_timeless(),
        run_integ_ams(),
        run_explicit("forward-euler"),
        run_explicit("rk4"),
    ):
        table.add_row(
            name,
            row["completed"],
            row["retrace_mT"],
            row["solver distress"],
            row["wall_s"],
        )
    print(table.render())
    print()
    print("The timeless row completes with sub-millitesla retrace and no")
    print("solver involvement; the solver-coupled rows show the Newton")
    print("failures, step-floor grinding and negative slopes the paper")
    print("set out to eliminate.")


if __name__ == "__main__":
    main()
