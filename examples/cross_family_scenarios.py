#!/usr/bin/env python3
"""Three model families, one scenario catalogue, one executor.

The protocol layer's party trick: timeless JA, Everett-identified
Preisach and the classic time-domain chain — built from the registry,
driven through the shared scenario catalogue by the model-agnostic
batch executor, with zero family-specific drive code.  Also dumps the
timeless ensemble's inrush run as a multi-lane VCD so the lanes can be
scrubbed in a waveform viewer.

Usage::

    python examples/cross_family_scenarios.py
"""

import numpy as np

from repro.io import write_batch_vcd
from repro.models import list_families
from repro.scenarios import list_scenarios, run_scenario

H_MAX = 10e3
N_CORES = 4
SCENARIOS = ("major-loop", "demagnetisation", "forc-family", "inrush", "harmonic")


def main() -> None:
    print(f"{'family':<12} {'scenario':<16} {'samples':>7} "
          f"{'finite':>6}  counters")
    vcd_source = None
    for family in list_families():
        batch = family.make_batch(N_CORES)
        for name in SCENARIOS:
            result = run_scenario(
                batch, name, h_max=H_MAX, driver_step=H_MAX / 100.0
            )
            finite = int(result.finite_lanes.sum())
            counters = ", ".join(
                f"{key}={int(value.sum())}"
                for key, value in sorted(result.counters.items())
            )
            print(f"{family.name:<12} {name:<16} {len(result):>7} "
                  f"{finite:>3}/{N_CORES}  {counters}")
            if family.name == "timeless" and name == "inrush":
                vcd_source = result

    path = "cross_family_inrush.vcd"
    write_batch_vcd(path, vcd_source, module_name="inrush")
    print(f"\nwrote {path}: {vcd_source.n_cores} signal groups x "
          f"{len(vcd_source)} samples (open in GTKWave)")

    # every known scenario is runnable by every family — show the menu
    print("\nscenario catalogue:")
    for scenario in list_scenarios():
        kind = "per-core" if scenario.per_core else (
            "sampled" if scenario.waypoint_builder is None else "waypoints"
        )
        print(f"  {scenario.name:<18} [{kind:>9}] {scenario.description}")

    # the whole point, in one line:
    assert all(
        np.isfinite(run_scenario(
            family.make_batch(2), "minor-loop-ladder",
            h_max=H_MAX, driver_step=200.0,
        ).b).all()
        for family in list_families()
    )
    print("\nall families executed the full catalogue through one executor")


if __name__ == "__main__":
    main()
