#!/usr/bin/env python3
"""Quickstart: trace a B-H major loop with the timeless JA model.

Runs the paper's material around one major hysteresis loop, prints the
standard figures of merit and renders the loop as ASCII art.

Usage::

    python examples/quickstart.py
"""

from repro import PAPER_PARAMETERS, TimelessJAModel, run_sweep
from repro.analysis import extract_loops, loop_metrics
from repro.io import plot_bh
from repro.waveforms import major_loop_waypoints


def main() -> None:
    # The model: Jiles-Atherton hysteresis, integrated in the field
    # variable H ("timeless") with events every dhmax = 50 A/m.
    model = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)

    # A DC sweep schedule: demagnetised origin, up to +10 kA/m, one full
    # major loop.
    waypoints = major_loop_waypoints(10e3, cycles=1)
    sweep = run_sweep(model, waypoints)

    print(f"swept {len(sweep)} field samples, "
          f"{sweep.euler_steps} irreversible Euler steps")

    # Figures of merit, measured on the closed major loop only.
    major = extract_loops(sweep.h, sweep.b)[0]
    metrics = loop_metrics(major.h, major.b)
    print(f"coercivity  Hc   = {metrics.coercivity:8.1f} A/m")
    print(f"remanence   Br   = {metrics.remanence:8.3f} T")
    print(f"peak flux   Bmax = {metrics.b_max:8.3f} T")
    print(f"loop area        = {metrics.area:8.0f} J/m^3 per cycle")
    print()
    print(plot_bh(sweep.h / 1000.0, sweep.b, h_unit="kA/m"))


if __name__ == "__main__":
    main()
