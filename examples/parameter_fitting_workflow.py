#!/usr/bin/env python3
"""Parameter extraction workflow: from a measured loop to a JA fit.

The situation this mirrors: you have a measured B-H major loop of an
unknown material and need JA parameters for simulation.  The script

1. synthesises a "measurement" (here: the paper's material plus a
   pinch of noise, standing in for lab data),
2. starts from deliberately bad order-of-magnitude guesses,
3. fits k, c and Msat in log space,
4. validates the fit on a *minor* loop the fitter never saw.

Usage::

    python examples/parameter_fitting_workflow.py
"""

import numpy as np

from repro import PAPER_PARAMETERS, TimelessJAModel, run_sweep
from repro.analysis.comparison import compare_bh_curves
from repro.analysis.fitting import fit_ja_parameters
from repro.io import TextTable
from repro.waveforms import biased_minor_loop_waypoints, major_loop_waypoints

WAYPOINTS = major_loop_waypoints(10e3, cycles=1)
RNG = np.random.default_rng(2006)


def measure() -> tuple[np.ndarray, np.ndarray]:
    """The 'lab measurement': paper material + 2 mT sensor noise."""
    model = TimelessJAModel(PAPER_PARAMETERS, dhmax=200.0)
    sweep = run_sweep(model, WAYPOINTS)
    noisy_b = sweep.b + RNG.normal(scale=2e-3, size=len(sweep.b))
    return sweep.h, noisy_b


def main() -> None:
    h_meas, b_meas = measure()

    start = PAPER_PARAMETERS.with_updates(
        k=8000.0, c=0.3, m_sat=1.0e6, name="initial-guess"
    )
    fit = fit_ja_parameters(
        h_meas,
        b_meas,
        WAYPOINTS,
        initial=start,
        vary=("k", "c", "m_sat"),
        max_nfev=60,
    )

    table = TextTable(
        ["parameter", "guess", "fitted", "truth"],
        title=f"Fit ({fit.iterations} objective evaluations, "
        f"residual {100 * fit.relative_rms:.2f}% of B swing)",
    )
    for name in ("k", "c", "m_sat"):
        table.add_row(
            name,
            getattr(start, name),
            getattr(fit.params, name),
            getattr(PAPER_PARAMETERS, name),
        )
    print(table.render())
    print()

    # Out-of-sample validation: a biased minor loop.
    minor = biased_minor_loop_waypoints(2000.0, 3000.0, cycles=3)
    truth_model = TimelessJAModel(PAPER_PARAMETERS, dhmax=100.0)
    truth = run_sweep(truth_model, minor)
    fitted_model = TimelessJAModel(fit.params, dhmax=100.0)
    predicted = run_sweep(fitted_model, minor)
    distance = compare_bh_curves(truth.h, truth.b, predicted.h, predicted.b)
    swing = float(truth.b.max() - truth.b.min())
    print(
        f"out-of-sample minor-loop error: max |dB| = "
        f"{distance.max_abs * 1e3:.1f} mT "
        f"({100 * distance.max_abs / swing:.2f}% of its swing)"
    )


if __name__ == "__main__":
    main()
