#!/usr/bin/env python3
"""Tour of the HDL substrates: event kernel, tracing, VCD, AMS solver.

Shows the machinery underneath the two paper implementations:

1. the SystemC-like event kernel running the published three-process JA
   module, with signal tracing dumped to a VCD file;
2. the VHDL-AMS-like analogue solver running the timeless architecture,
   with its solver report.

Usage::

    python examples/hdl_kernel_tour.py [output.vcd]
"""

import sys

from repro import PAPER_PARAMETERS
from repro.core.sweep import waypoint_samples
from repro.hdl.systemc import SystemCTestbench
from repro.hdl.vhdlams import (
    SolverOptions,
    TimelessJAArchitecture,
    TransientSolver,
)
from repro.io import write_vcd
from repro.waveforms import TriangularWave, major_loop_waypoints


def systemc_part(vcd_path: str) -> None:
    print("=== SystemC-style event kernel ===")
    samples = waypoint_samples(major_loop_waypoints(10e3, cycles=1), 25.0)
    bench = SystemCTestbench(PAPER_PARAMETERS, samples, dhmax=50.0)
    result = bench.run()
    scheduler = bench.scheduler
    print(f"driver samples : {len(samples)}")
    print(f"sim time       : {scheduler.now.to_seconds() * 1e9:.0f} ns")
    print(f"delta cycles   : {scheduler.delta_count}")
    print(f"process runs   : {scheduler.process_runs}")
    print(f"Euler steps    : {result.euler_steps}")
    print(f"B range        : {result.b.min():+.3f} .. {result.b.max():+.3f} T")

    write_vcd(vcd_path, bench.tracer.traces.values(), module_name="ja_bench")
    print(f"wrote VCD      : {vcd_path} "
          f"({len(bench.tracer.traces)} signals)")
    print()


def vhdlams_part() -> None:
    print("=== VHDL-AMS-style analogue solver ===")
    wave = TriangularWave(10e3, 10e-3)
    arch = TimelessJAArchitecture(PAPER_PARAMETERS, wave, dhmax=50.0)
    solver = TransientSolver(
        arch.system, SolverOptions(dt_initial=1e-6, dt_max=5e-5)
    )
    result = solver.run(t_stop=12.5e-3)
    report = result.report
    print(f"quantities     : "
          f"{', '.join(q.name for q in arch.system.quantities)}")
    print(f"accepted steps : {report.accepted_steps}")
    print(f"rejected steps : {report.rejected_steps}")
    print(f"newton iters   : {report.newton_iterations}")
    print(f"euler steps    : {arch.euler_steps} (inside the process)")
    b = result.of(arch.q_b)
    print(f"B range        : {b.min():+.3f} .. {b.max():+.3f} T")
    print("note: zero Newton failures - the discontinuous JA equation "
          "never reaches the solver")


def main() -> None:
    vcd_path = sys.argv[1] if len(sys.argv) > 1 else "ja_bench.vcd"
    systemc_part(vcd_path)
    vhdlams_part()


if __name__ == "__main__":
    main()
