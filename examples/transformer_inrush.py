#!/usr/bin/env python3
"""Mixed-domain demo: transformer-style inrush of a hysteretic inductor.

Energises a JA-cored winding from a 50 Hz mains source through a small
series resistance and shows the two classic hysteresis signatures:

* inrush: the first current peak is several times the settled peak,
  strongest when switching at a voltage zero crossing;
* remanence: de-energising leaves the core magnetised, so a second
  energisation from remanence draws a different inrush.

Usage::

    python examples/transformer_inrush.py
"""

import numpy as np

from repro.io import AsciiPlot, TextTable
from repro.magnetics import HysteresisInductor, RLDriveCircuit, ToroidCore
from repro.magnetics.material import PAPER_STEEL
from repro.waveforms import SineWave

FREQUENCY = 50.0
PERIOD = 1.0 / FREQUENCY
STEPS_PER_CYCLE = 400


def build_inductor() -> HysteresisInductor:
    core = ToroidCore(inner_radius=0.04, outer_radius=0.06, height=0.02)
    return HysteresisInductor(PAPER_STEEL, core, turns=1500, dhmax=25.0)


def energise(inductor: HysteresisInductor, phase: float, cycles: int):
    """Drive the winding for some cycles from the given source phase."""
    source = SineWave(230.0, FREQUENCY, phase=phase)
    circuit = RLDriveCircuit(inductor, resistance=2.0, source=source)
    return circuit.run(t_stop=cycles * PERIOD, dt=PERIOD / STEPS_PER_CYCLE)


def main() -> None:
    table = TextTable(
        ["scenario", "first peak [A]", "settled peak [A]", "inrush ratio"],
        title="Energisation scenarios (230 V, 50 Hz, R = 2 ohm)",
    )

    # Worst case: voltage zero crossing, demagnetised core.
    inductor = build_inductor()
    worst = energise(inductor, phase=0.0, cycles=6)
    settled = float(np.max(np.abs(worst.i[-STEPS_PER_CYCLE:])))
    first = float(np.max(np.abs(worst.i[: STEPS_PER_CYCLE + 1])))
    table.add_row("switch at V = 0, demagnetised", first, settled, first / settled)

    # Easy case: voltage peak, demagnetised core.
    inductor = build_inductor()
    easy = energise(inductor, phase=np.pi / 2.0, cycles=6)
    settled_e = float(np.max(np.abs(easy.i[-STEPS_PER_CYCLE:])))
    first_e = float(np.max(np.abs(easy.i[: STEPS_PER_CYCLE + 1])))
    table.add_row("switch at V peak, demagnetised", first_e, settled_e, first_e / settled_e)

    # Re-energisation from remanence: run, stop, note B, run again.
    inductor = build_inductor()
    energise(inductor, phase=0.0, cycles=3)
    b_remanent = inductor.b
    again = energise(inductor, phase=0.0, cycles=6)
    settled_r = float(np.max(np.abs(again.i[-STEPS_PER_CYCLE:])))
    first_r = float(np.max(np.abs(again.i[: STEPS_PER_CYCLE + 1])))
    table.add_row(
        f"re-switch at V = 0 from B = {b_remanent:+.2f} T",
        first_r,
        settled_r,
        first_r / settled_r,
    )
    print(table.render())

    # Current waveform of the worst case, first two cycles.
    plot = AsciiPlot(width=79, height=21)
    mask = worst.t <= 2.0 * PERIOD
    plot.add_series(worst.t[mask] * 1e3, worst.i[mask])
    print()
    print("Worst-case inrush current (first two cycles):")
    print(plot.render(x_label="t [ms]", y_label="i [A]"))


if __name__ == "__main__":
    main()
