#!/usr/bin/env python3
"""Batch ensemble: sweep a whole parameter space in one lockstep run.

Builds 128 material variants around the paper's parameter set (a
coercivity/reversibility grid), drives them all around the same major
loop with one :func:`repro.batch.sweep` call, and reports the spread of
the figures of merit plus the throughput against the scalar loop the
engine replaces.  Every lane is bitwise identical to a scalar
:class:`~repro.core.model.TimelessJAModel` run — the batch engine is the
scalar model, amortised.

Usage::

    python examples/batch_ensemble_sweep.py
"""

import time

import numpy as np

from repro import PAPER_PARAMETERS, TimelessJAModel, run_sweep
from repro.analysis import extract_loops, loop_metrics
from repro.batch import sweep
from repro.waveforms import major_loop_waypoints


def main() -> None:
    # A 16 x 8 grid over pinning strength k (sets coercivity) and
    # reversibility c — the kind of "how would the loop look if..."
    # question a designer asks 128 times at once.
    k_values = PAPER_PARAMETERS.k * np.linspace(0.5, 2.0, 16)
    c_values = np.linspace(0.05, 0.4, 8)
    params = [
        PAPER_PARAMETERS.with_updates(k=float(k), c=float(c), name=f"k{k:.0f}-c{c:.2f}")
        for k in k_values
        for c in c_values
    ]

    waypoints = major_loop_waypoints(10e3, cycles=1)
    start = time.perf_counter()
    result = sweep(params, waypoints, dhmax=50.0, driver_step=12.5)
    batch_seconds = time.perf_counter() - start
    print(f"batch: {result.n_cores} cores x {len(result)} samples "
          f"in {batch_seconds:.2f} s")

    # The scalar loop the sweep() call replaces, timed on a subset.
    subset = params[:: len(params) // 8]
    start = time.perf_counter()
    for p in subset:
        run_sweep(TimelessJAModel(p, dhmax=50.0), waypoints, driver_step=12.5)
    scalar_seconds = (time.perf_counter() - start) * len(params) / len(subset)
    print(f"scalar loop (extrapolated): {scalar_seconds:.2f} s "
          f"-> {scalar_seconds / batch_seconds:.1f}x speedup")

    # Figures of merit across the ensemble.
    hc = np.empty(result.n_cores)
    br = np.empty(result.n_cores)
    for i in range(result.n_cores):
        lane = result.core(i)
        major = extract_loops(lane.h, lane.b)[0]
        metrics = loop_metrics(major.h, major.b)
        hc[i], br[i] = metrics.coercivity, metrics.remanence
    print(f"coercivity Hc spans {hc.min():7.1f} .. {hc.max():7.1f} A/m")
    print(f"remanence  Br spans {br.min():7.3f} .. {br.max():7.3f} T")

    # Spot-check the bitwise claim on one lane.
    i = len(params) // 2
    scalar = run_sweep(
        TimelessJAModel(params[i], dhmax=50.0), waypoints, driver_step=12.5
    )
    exact = bool(np.array_equal(scalar.b, result.b[:, i]))
    print(f"lane {i} vs scalar run bitwise equal: {exact}")


if __name__ == "__main__":
    main()
