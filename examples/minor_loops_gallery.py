#!/usr/bin/env python3
"""Minor-loop gallery: the paper's Figure 1 plus a biased-loop family.

Reproduces the headline demonstration — nested non-biased minor loops
from a decaying triangular sweep — then adds what the paper claims but
does not plot: minor loops "in different positions" (DC-biased).

Usage::

    python examples/minor_loops_gallery.py
"""

from repro import PAPER_PARAMETERS, TimelessJAModel, run_sweep
from repro.analysis import audit_trajectory, extract_loops, loop_closure_error
from repro.core.sweep import concatenate_sweeps
from repro.io import AsciiPlot
from repro.waveforms import biased_minor_loop_waypoints, fig1_waypoints


def figure_one() -> None:
    """The decaying triangle: one major loop with nested minor loops."""
    model = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
    sweep = run_sweep(model, fig1_waypoints(minor_loop_count=4))
    audit = audit_trajectory(sweep.h, sweep.b)
    print("=== Figure 1: nested non-biased minor loops ===")
    print(f"finite: {audit.finite}, "
          f"B-retrace depth: {audit.monotonicity_depth * 1e3:.2f} mT "
          f"(acceptable: {audit.acceptable()})")
    plot = AsciiPlot(width=79, height=29)
    plot.add_series(sweep.h / 1000.0, sweep.b)
    print(plot.render(x_label="H [kA/m]", y_label="B [T]"))
    print()


def biased_family() -> None:
    """Minor loops of one size parked at different bias points."""
    print("=== Biased minor loops (amplitude 1.5 kA/m) ===")
    plot = AsciiPlot(width=79, height=29)
    markers = "abcd"
    for marker, bias in zip(markers, (0.0, 2000.0, 4000.0, 6000.0)):
        model = TimelessJAModel(PAPER_PARAMETERS, dhmax=25.0)
        waypoints = biased_minor_loop_waypoints(bias, 1500.0, cycles=8)
        sweep = run_sweep(model, waypoints)
        loops = extract_loops(sweep.h, sweep.b)
        settled = loops[-1]
        closure = loop_closure_error(settled)
        print(f"  bias {bias:6.0f} A/m -> settled closure "
              f"{closure * 1e3:7.3f} mT  (marker '{marker}')")
        plot.add_series(settled.h / 1000.0, settled.b, marker=marker)
    print()
    print(plot.render(x_label="H [kA/m]", y_label="B [T]"))


def main() -> None:
    figure_one()
    biased_family()


if __name__ == "__main__":
    main()
