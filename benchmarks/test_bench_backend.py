"""EXP-B4 bench: fused sweep throughput across array backends.

The backend twin of ``test_bench_batch.py``: N = 256 heterogeneous
timeless cores on the minor-loop-ladder drive, the fused ``step_series``
path against the per-sample dispatch loop it replaces — bitwise
equality always asserted on the numpy backend, >= 2x throughput
asserted for the fused path, and the numba JIT leg skipped gracefully
when numba is not installed (the numba CI leg installs it and runs this
file with ``REPRO_BACKEND=numba``).  Also regenerates EXP-B4 end to
end into ``results/EXP-B4.txt``.
"""

import time

import numpy as np
import pytest

from repro.backend import get_backend, list_backends
from repro.batch.sweep import run_batch_series
from repro.experiments import run_experiment
from repro.experiments.backend_fused import (
    bitwise_equal_lanes,
    make_timeless_batch,
    max_relative_deviation,
)
from repro.experiments.runner import results_header
from repro.scenarios import scenario_samples

N_CORES = 256
H_MAX = 10e3
DRIVER_STEP = 100.0


def _drive() -> np.ndarray:
    return scenario_samples("minor-loop-ladder", H_MAX, DRIVER_STEP)


def test_fused_speedup_over_per_sample(benchmark, results_dir):
    """The acceptance headline: the fused numpy sweep is >= 2x over the
    per-sample dispatch loop at N = 256, and bitwise identical to it."""
    h = _drive()
    fused_batch = make_timeless_batch(N_CORES, backend="numpy")

    result = benchmark.pedantic(
        lambda: run_batch_series(fused_batch, h),
        rounds=3,
        iterations=1,
    )
    fused_seconds = benchmark.stats.stats.min

    loop_batch = make_timeless_batch(N_CORES, backend="numpy")
    per_sample_seconds = min(
        _timed(lambda: run_batch_series(loop_batch, h, fused=False))[0]
        for _ in range(2)
    )
    reference = run_batch_series(loop_batch, h, fused=False)

    speedup = per_sample_seconds / fused_seconds
    throughput = N_CORES * len(h) / fused_seconds
    report = (
        f"fused numpy sweep: {fused_seconds:.3f} s, per-sample loop: "
        f"{per_sample_seconds:.3f} s -> {speedup:.1f}x speedup, "
        f"{throughput:.3e} core-steps/s at N = {N_CORES}"
    )
    print("\n" + report)
    (results_dir / "EXP-B4_bench.txt").write_text(
        results_header(backend="numpy", workers=1) + report + "\n"
    )

    # Bitwise equivalence of what was just timed (not a tolerance).
    assert bitwise_equal_lanes(reference, result) == N_CORES
    assert np.array_equal(
        reference.extras["m_an"], result.extras["m_an"]
    )
    for key in reference.counters:
        assert np.array_equal(reference.counters[key], result.counters[key])
    assert speedup >= 2.0, report


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def test_numba_fused_speedup(results_dir):
    """The JIT leg: skipped (not failed) when numba is not installed,
    matching the sharded bench's worker-count skip pattern."""
    names = {backend.name for backend in list_backends()}
    if "numba" not in names:
        pytest.skip(
            "numba not installed; the numba CI leg installs it and "
            "runs this assertion"
        )
    backend = get_backend("numba")
    h = _drive()
    numba_batch = make_timeless_batch(N_CORES, backend="numba")
    run_batch_series(numba_batch, h)  # JIT warm-up outside the timing
    numba_seconds, fused = _timed(lambda: run_batch_series(numba_batch, h))

    loop_batch = make_timeless_batch(N_CORES, backend="numpy")
    per_sample_seconds, reference = _timed(
        lambda: run_batch_series(loop_batch, h, fused=False)
    )

    speedup = per_sample_seconds / max(numba_seconds, 1e-12)
    deviation = max_relative_deviation(reference, fused)
    report = (
        f"fused numba sweep: {numba_seconds:.3f} s, per-sample loop: "
        f"{per_sample_seconds:.3f} s -> {speedup:.1f}x speedup, "
        f"max rel dev {deviation:.2e} (rtol {backend.rtol:g})"
    )
    print("\n" + report)
    (results_dir / "EXP-B4_numba_bench.txt").write_text(report + "\n")

    # Discretiser decisions are exact across backends; trajectories
    # hold the backend's rtol tier.
    assert np.array_equal(reference.updated, fused.updated)
    assert np.array_equal(
        reference.counters["euler_steps"], fused.counters["euler_steps"]
    )
    assert deviation <= backend.rtol, report
    assert speedup >= 2.0, report


def test_backend_experiment(benchmark, persist):
    """EXP-B4 end-to-end (covers every registered backend's row)."""
    result = benchmark.pedantic(
        lambda: run_experiment("EXP-B4"),
        rounds=1,
        iterations=1,
    )
    persist(result)
    print()
    print(result.render())
    assert result.data["equal_lanes"] == result.data["n_cores"]
    assert result.data["fused_speedup"] >= 1.5
