"""EXP-T5 bench: convergence of the timeless scheme vs exact reference."""

from repro.experiments import run_experiment


def test_convergence_order(benchmark, results_dir, persist):
    result = benchmark.pedantic(
        lambda: run_experiment("EXP-T5"),
        rounds=1,
        iterations=1,
    )
    persist(result)
    print()
    print(result.render())

    # Forward Euler in H: observed order ~1, and the error at the
    # paper's dhmax = 50 A/m is below 1% of the B swing.
    assert 0.8 < result.data["order"] < 1.2
    errors = dict(zip(result.data["dhmax_values"], result.data["errors"]))
    assert errors[50.0] / result.data["b_swing"] < 0.01
