"""EXP-X1 bench: mixed-domain RL circuit with hysteretic inductor."""

import math

from repro.experiments import run_experiment


def test_rl_inrush(benchmark, results_dir, persist):
    result = benchmark.pedantic(
        lambda: run_experiment("EXP-X1"),
        rounds=1,
        iterations=1,
    )
    persist(result)
    print()
    print(result.render())

    # Hysteretic-core signatures: strong inrush, distorted magnetising
    # current, positive core loss, clean co-simulation.
    assert result.data["first_peak"] / result.data["settled_peak"] > 2.0
    assert result.data["crest_factor"] > math.sqrt(2.0) * 1.1
    assert result.data["loss_power"] > 0.0
    assert result.data["run"].newton_failures == 0
