"""EXP-B5 bench: fused × sharded composition across a worker pool.

The composition twin of ``test_bench_parallel.py`` (sharding) and
``test_bench_backend.py`` (fusion): N = 512 heterogeneous Preisach
cores — the heaviest per-sample tensor, and since PR 5 a family with a
compiled numba driver — driven through the minor-loop-ladder scenario,
fused shards across a pool against the single-process fused sweep they
split up.  Bitwise reassembly always asserted on the numpy backend;
>= 2x throughput asserted only when the host grants >= 4 real workers
(smaller hosts, or a ``REPRO_PARALLEL_MAX_WORKERS`` cap below 4, skip
the speedup claim gracefully, exactly like the sharded bench).  The
numba leg records the ROADMAP's crossover — one fused numba process vs
K fused numpy workers — and skips (not fails) when numba is absent.
Also regenerates EXP-B5 end to end into ``results/EXP-B5.txt`` with
the backend and worker count stamped in the header.
"""

import time

import numpy as np
import pytest

from repro.backend import get_backend, list_backends
from repro.batch.preisach import BatchPreisachModel
from repro.batch.sweep import run_batch_series
from repro.experiments import run_experiment
from repro.experiments.backend_fused import max_relative_deviation
from repro.experiments.batch_families import make_preisach_ensemble
from repro.experiments.parallel_ensemble import bitwise_equal_lanes
from repro.experiments.runner import results_header
from repro.parallel import available_cpus, resolve_workers, run_sharded
from repro.scenarios import scenario_samples

N_CORES = 512
N_CELLS = 24
H_MAX = 10e3
DRIVER_STEP = 400.0
REQUIRED_WORKERS = 4


def _workload(backend: str = "numpy"):
    models = make_preisach_ensemble(N_CORES, n_cells=N_CELLS)
    batch = BatchPreisachModel.from_scalar_models(models).use_backend(backend)
    h = scenario_samples("minor-loop-ladder", H_MAX, DRIVER_STEP)
    return batch, h


def _header(workers: int, backend: str) -> str:
    """Results-file header naming what was actually measured — the
    workload's own backend, not whatever ``REPRO_BACKEND`` happens to
    resolve to in the invoking shell."""
    return results_header(backend=backend, workers=workers)


def test_fused_sharded_speedup(benchmark, results_dir, bench_json):
    """The acceptance headline: fused shards across >= 4 real workers
    beat the single-process fused sweep >= 2x at N = 512.  Smaller
    hosts still measure and land ``results/BENCH-EXP-B5.json`` — only
    the 2x *assertion* skips."""
    workers = resolve_workers(min(REQUIRED_WORKERS, available_cpus()))
    batch, h = _workload()

    result = benchmark.pedantic(
        lambda: run_sharded(batch, h, n_workers=workers),
        rounds=3,
        iterations=1,
    )
    sharded_seconds = benchmark.stats.stats.min

    start = time.perf_counter()
    single = run_batch_series(batch, h)  # the fused path, by default
    single_seconds = time.perf_counter() - start

    speedup = single_seconds / sharded_seconds
    throughput = N_CORES * len(h) / sharded_seconds
    report = (
        f"fused sharded preisach: {sharded_seconds:.3f} s on {workers} "
        f"fused workers, single fused process: {single_seconds:.3f} s -> "
        f"{speedup:.1f}x speedup, {throughput:.3e} core-steps/s at "
        f"N = {N_CORES}"
    )
    print("\n" + report)
    (results_dir / "EXP-B5_bench.txt").write_text(
        _header(workers, batch.backend.name) + report + "\n"
    )
    bench_json(
        "EXP-B5",
        [
            {"op": "fused_sharded", "n": N_CORES, "seconds": sharded_seconds},
            {"op": "fused_single", "n": N_CORES, "seconds": single_seconds},
        ],
        backend=batch.backend.name,
        workers=workers,
    )

    # Bitwise equivalence of what was just timed (not a tolerance).
    assert bitwise_equal_lanes(single, result) == N_CORES
    if workers < REQUIRED_WORKERS:
        pytest.skip(
            f"measured and recorded at {workers} worker(s), but the 2x "
            f"claim needs >= {REQUIRED_WORKERS} real workers "
            f"({available_cpus()} CPUs, REPRO_PARALLEL_MAX_WORKERS cap)"
        )
    assert speedup >= 2.0, report


def test_numba_crossover_one_process_vs_pool(results_dir):
    """The ROADMAP crossover: one fused numba process against K fused
    numpy workers.  Skipped (not failed) when numba is not installed,
    matching the backend bench's skip pattern; no winner is asserted —
    the point is an honest record of where the crossover sits on this
    host — but both sides must hold their equivalence tier."""
    names = {backend.name for backend in list_backends()}
    if "numba" not in names:
        pytest.skip(
            "numba not installed; the numba CI leg installs it and "
            "records this crossover"
        )
    backend = get_backend("numba")
    workers = resolve_workers(None)

    numba_batch, h = _workload(backend="numba")
    run_batch_series(numba_batch, h)  # JIT warm-up outside the timing
    start = time.perf_counter()
    jit_single = run_batch_series(numba_batch, h)
    jit_seconds = time.perf_counter() - start

    numpy_batch, _ = _workload(backend="numpy")
    start = time.perf_counter()
    pool_sharded = run_sharded(numpy_batch, h, n_workers=workers)
    pool_seconds = time.perf_counter() - start

    reference = run_batch_series(numpy_batch, h)
    deviation = max_relative_deviation(reference, jit_single)
    winner = (
        "one fused numba process"
        if jit_seconds <= pool_seconds
        else f"{workers} fused numpy workers"
    )
    report = (
        f"one fused numba process: {jit_seconds:.3f} s vs {workers} fused "
        f"numpy workers: {pool_seconds:.3f} s -> {winner} "
        f"(jit max rel dev {deviation:.2e}, rtol {backend.rtol:g})"
    )
    print("\n" + report)
    (results_dir / "EXP-B5_numba_bench.txt").write_text(
        _header(workers, "numba (single) vs numpy (sharded)") + report + "\n"
    )

    # Switching decisions are exact across backends; trajectories hold
    # the JIT tier; the pooled numpy side is bitwise.
    assert np.array_equal(reference.updated, jit_single.updated)
    assert np.array_equal(
        reference.counters["switch_events"],
        jit_single.counters["switch_events"],
    )
    assert deviation <= backend.rtol, report
    assert bitwise_equal_lanes(reference, pool_sharded) == N_CORES


def test_fused_sharded_experiment(benchmark, results_dir):
    """EXP-B5 end-to-end (covers every family × backend × mode row)."""
    result = benchmark.pedantic(
        lambda: run_experiment("EXP-B5"),
        rounds=1,
        iterations=1,
    )
    (results_dir / "EXP-B5.txt").write_text(
        _header(
            result.data["workers"], ", ".join(result.data["backends"])
        )
        + result.render()
        + "\n"
    )
    print()
    print(result.render())
    for row in result.data["rows"]:
        if row["equal_lanes"] is not None:
            assert row["equal_lanes"] == result.data["n_cores"], row
    # Every registered backend contributed both composition modes per
    # family; the numba leg additionally records the crossover.
    modes = {(r["family"], r["backend"], r["mode"]) for r in result.data["rows"]}
    assert len(modes) == len(result.data["rows"])
    if "numba" in result.data["backends"]:
        assert set(result.data["crossover"]) == {
            "preisach",
            "time-domain",
            "timeless",
        }
