"""EXP-B6 bench: the calibrated autoscheduler's acceptance bars.

The planning twin of ``test_bench_fused_sharded.py``: EXP-B6 races
``plan="auto"`` against every hand-picked plan on each family ×
ensemble-size cell, all through ``run_sharded(..., plan=...)``.  Two
bars, both measured (not predicted):

* the auto plan lands within **1.2x of the best** hand-picked plan on
  every cell — the planner never costs more than noise;
* on at least one cell the **spread** between the best and worst hand
  plan is **>= 2x** — i.e. the plan space is genuinely treacherous on
  this host, so planning is worth having.

Hosts with < 4 real cores skip (not fail): with one or two CPUs the
candidate space collapses to near-identical plans and both bars are
meaningless — the tier-1 smoke test (``tests/test_sched.py``) still
covers structure and correctness there.  A tiny-budget calibration runs
in-process; the resulting table lands in ``results/EXP-B6.txt`` with
backend, worker, thread and calibration-id stamps.
"""

import pytest

from repro.experiments import run_experiment
from repro.experiments.runner import results_header
from repro.parallel import available_cpus, resolve_workers

REQUIRED_CPUS = 4


def test_auto_plan_acceptance(benchmark, results_dir, bench_json):
    """Narrow hosts still measure and land ``results/BENCH-EXP-B6.json``
    (an honest record of a collapsed plan space); only the two timing
    bars skip below ``REQUIRED_CPUS``."""
    cpus = available_cpus()
    workers = resolve_workers(None)

    result = benchmark.pedantic(
        lambda: run_experiment("EXP-B6", sizes=(32, 512), repeats=3),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    (results_dir / "EXP-B6.txt").write_text(
        results_header(
            backend=", ".join(result.data["backends"]),
            workers=workers,
            threads=max(row["threads"] for row in result.data["rows"]),
            calibration=result.data["calibration_id"],
        )
        + result.render()
        + "\n"
    )
    summary = "; ".join(
        f"{key}: auto={cell['auto_seconds']:.3f}s "
        f"({cell['auto_vs_best']:.2f}x of {cell['best_plan']}), "
        f"spread {cell['spread']:.2f}x"
        for key, cell in result.data["cells"].items()
    )
    (results_dir / "EXP-B6_bench.txt").write_text(
        results_header(
            backend=", ".join(result.data["backends"]),
            workers=workers,
            calibration=result.data["calibration_id"],
        )
        + summary
        + "\n"
    )
    bench_json(
        "EXP-B6",
        [
            {
                "op": f"{row['family']}:{row['plan']}",
                "n": row["n_cores"],
                "seconds": row["seconds"],
                "backend": row["backend"],
                "workers": row["workers"],
                "threads": row["threads"],
            }
            for row in result.data["rows"]
        ],
        workers=workers,
        calibration=result.data["calibration_id"],
    )

    # Correctness rides along on every measured plan.
    for row in result.data["rows"]:
        assert row["equivalence_ok"], row

    if cpus < REQUIRED_CPUS or workers < REQUIRED_CPUS:
        pytest.skip(
            f"measured and recorded, but the timing bars need >= "
            f"{REQUIRED_CPUS} real cores for a meaningful plan space; "
            f"host grants {workers} ({cpus} CPUs, "
            "REPRO_PARALLEL_MAX_WORKERS cap)"
        )

    # Bar 1: auto within 1.2x of the best hand plan on EVERY cell.
    for key, cell in result.data["cells"].items():
        assert cell["auto_vs_best"] <= 1.2, (key, cell)

    # Bar 2: somewhere, hand-picking wrong costs >= 2x — the spread that
    # makes calibrated planning worth its probes.
    assert max(
        cell["spread"] for cell in result.data["cells"].values()
    ) >= 2.0, result.data["cells"]
