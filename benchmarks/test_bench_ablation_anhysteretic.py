"""EXP-A2 bench: anhysteretic-curve ablation (the paper's a/a2
ambiguity, bounded)."""

from repro.experiments import run_experiment


def test_anhysteretic_ablation(benchmark, results_dir, persist):
    result = benchmark.pedantic(
        lambda: run_experiment("EXP-A2", dhmax=50.0),
        rounds=1,
        iterations=1,
    )
    persist(result)
    print()
    print(result.render())

    metrics = {
        name: entry["metrics"] for name, entry in result.data.items()
    }
    coercivities = [m.coercivity for m in metrics.values()]
    b_maxima = [m.b_max for m in metrics.values()]
    # All readings of the parameter ambiguity give the same qualitative
    # loop: Hc within ~10%, Bmax within ~15%.
    assert max(coercivities) / min(coercivities) < 1.10
    assert max(b_maxima) / min(b_maxima) < 1.15
