"""EXP-B2 bench: Preisach relay-tensor throughput vs the scalar loop.

The non-JA twin of ``test_bench_batch.py``: N = 64 heterogeneous
Preisach cores driven through the minor-loop-ladder scenario, the
vectorised ``(cores, n_alpha, n_beta)`` relay tensor against the
per-model Python loop it replaces — bitwise-identical lanes, asserted
>= 5x faster.  Also runs the EXP-B2 experiment end-to-end, which
additionally covers the batched time-domain family.
"""

import time

import numpy as np

from repro.batch.preisach import BatchPreisachModel
from repro.batch.sweep import run_batch_series
from repro.experiments import run_experiment
from repro.experiments.batch_families import (
    make_drive,
    make_preisach_ensemble,
    run_scalar_ensemble,
)
from repro.experiments.runner import results_header

N_CORES = 64
N_CELLS = 24
H_MAX = 10e3
DRIVER_STEP = 100.0


def _workload():
    models = make_preisach_ensemble(N_CORES, n_cells=N_CELLS)
    h = make_drive(H_MAX, DRIVER_STEP)
    return models, h


def test_batch_preisach_throughput(benchmark):
    models, h = _workload()

    def batch_run():
        batch = BatchPreisachModel.from_scalar_models(models)
        return run_batch_series(batch, h)

    result = benchmark.pedantic(batch_run, rounds=3, iterations=1)
    assert int(result.counters["switch_events"].sum()) > 0


def test_batch_preisach_speedup_over_scalar_loop(benchmark, results_dir):
    """The acceptance headline: >= 5x over the scalar loop at N = 64."""
    models, h = _workload()

    def batch_run():
        batch = BatchPreisachModel.from_scalar_models(models)
        return run_batch_series(batch, h)

    result = benchmark.pedantic(batch_run, rounds=3, iterations=1)
    batch_seconds = benchmark.stats.stats.min

    start = time.perf_counter()
    m_scalar, b_scalar = run_scalar_ensemble(models, h)
    scalar_seconds = time.perf_counter() - start

    speedup = scalar_seconds / batch_seconds
    throughput = N_CORES * len(h) / batch_seconds
    report = (
        f"batch preisach: {batch_seconds:.3f} s, scalar loop: "
        f"{scalar_seconds:.3f} s -> {speedup:.1f}x speedup, "
        f"{throughput:.3e} core-steps/s at N = {N_CORES} "
        f"({models[0].relay_count} relays/core)"
    )
    print("\n" + report)
    (results_dir / "EXP-B2_bench.txt").write_text(
        results_header(backend="numpy", workers=1) + report + "\n"
    )

    # Bitwise equivalence of what was just timed (not a tolerance).
    assert np.array_equal(result.b, b_scalar)
    assert np.array_equal(result.m, m_scalar)
    assert speedup >= 5.0, report


def test_batch_families_experiment(benchmark, persist):
    """EXP-B2 end-to-end (covers the time-domain family too)."""
    result = benchmark.pedantic(
        lambda: run_experiment("EXP-B2"),
        rounds=1,
        iterations=1,
    )
    persist(result)
    print()
    print(result.render())
    for family in ("preisach", "time-domain"):
        row = result.data[family]
        assert row["equal_lanes"] == row["n_cores"], family
