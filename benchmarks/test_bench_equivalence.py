"""EXP-T1 bench: SystemC vs VHDL-AMS vs functional core at paper
resolution (dhmax = 50 A/m) — 'virtually identical results'."""

from repro.experiments import run_experiment


def test_equivalence(benchmark, results_dir, persist):
    result = benchmark.pedantic(
        lambda: run_experiment("EXP-T1", dhmax=50.0),
        rounds=1,
        iterations=1,
    )
    persist(result)
    print()
    print(result.render())

    b_swing = result.data["b_swing"]
    for name, distance in result.data["distances"].items():
        # "virtually identical": within 1.5% of the loop's B swing at
        # the paper's dhmax.
        assert distance.max_abs / b_swing < 0.015, name
    assert result.data["ams_report"].newton_failures == 0
