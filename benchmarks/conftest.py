"""Benchmark harness support.

Every bench regenerates one paper artefact (see DESIGN.md §4), times the
underlying workload with pytest-benchmark, prints the experiment's
tables (visible with ``-s``) and writes them to ``results/`` so the
paper-facing numbers survive the run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_json(results_dir) -> Callable:
    """Writer for the machine-readable bench trajectory.

    ``bench_json("EXP-B7", records, workers=..., calibration=...)``
    lands ``results/BENCH-EXP-B7.json`` next to the text report — each
    record a dict with at least ``op`` / ``n`` / ``seconds``.
    """
    from repro.experiments.runner import write_bench_json

    def _write(experiment_id: str, records: list, **header) -> Path:
        return write_bench_json(
            results_dir / f"BENCH-{experiment_id}.json",
            experiment_id,
            records,
            **header,
        )

    return _write


@pytest.fixture(scope="session")
def persist(results_dir) -> Callable:
    """Writer for ExperimentResult reports (and artefacts)."""

    def _persist(result) -> None:
        path = results_dir / f"{result.experiment_id}.txt"
        path.write_text(result.render() + "\n")
        for stem, text in result.artifacts.items():
            (results_dir / f"{result.experiment_id}_{stem}.txt").write_text(
                text + "\n"
            )

    return _persist
