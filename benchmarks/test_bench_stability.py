"""EXP-T2 bench: stability at turning points across formulations.

The paper's central claim: the timeless model survives the slope
discontinuities that break the solver-coupled formulations.
"""

from repro.experiments import run_experiment


def test_stability_contrast(benchmark, results_dir, persist):
    result = benchmark.pedantic(
        lambda: run_experiment("EXP-T2", dhmax=50.0),
        rounds=1,
        iterations=1,
    )
    persist(result)
    print()
    print(result.render())

    timeless = result.data["timeless"]
    assert timeless["audit"].acceptable()
    assert timeless["sweep"].finite

    integ = result.data["integ_ams"]
    # The 'INTEG formulation shows solver distress the timeless one
    # never does: Newton failures, floor hits, negative slopes inside
    # the residual.
    assert integ["report"].newton_failures > 0
    assert integ["negative_slope_evaluations"] > 0

    euler = result.data["time_domain_forward-euler"]
    assert euler["result"].negative_slope_evaluations > 0
