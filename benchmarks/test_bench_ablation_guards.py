"""EXP-A1 bench: ablation of the two turning-point guards."""

from repro.experiments import run_experiment


def test_guard_ablation(benchmark, results_dir, persist):
    result = benchmark.pedantic(
        lambda: run_experiment("EXP-A1", dhmax=50.0),
        rounds=1,
        iterations=1,
    )
    persist(result)
    print()
    print(result.render())

    paper = result.data["both guards (paper)"]["audit"]
    unguarded = result.data["no guards"]["audit"]
    assert paper.acceptable()
    assert not unguarded.acceptable()
    # The non-physical retrace of the raw model is two orders of
    # magnitude above the guarded wiggle.
    assert (
        unguarded.monotonicity_depth > 50.0 * paper.monotonicity_depth
    )
