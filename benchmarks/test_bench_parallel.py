"""EXP-B3 bench: sharded multi-process throughput vs single-process.

The scaling twin of ``test_bench_batch.py``/``test_bench_preisach.py``:
N = 512 heterogeneous Preisach cores (the heaviest per-sample tensor)
driven through the minor-loop-ladder scenario, the sharded pool
executor against the in-process ``run_batch_series`` it splits up —
bitwise-identical reassembly always asserted, and >= 2x throughput
asserted when the host actually grants >= 4 workers (fewer cores, or a
``REPRO_PARALLEL_MAX_WORKERS`` cap below 4, skip the speedup claim
gracefully rather than timing an oversubscribed pool).  Also runs the
EXP-B3 experiment end-to-end, which covers every family's sharded
equivalence at an uneven split.
"""

import time

import numpy as np
import pytest

from repro.batch.preisach import BatchPreisachModel
from repro.batch.sweep import run_batch_series
from repro.experiments import run_experiment
from repro.experiments.batch_families import make_preisach_ensemble
from repro.experiments.parallel_ensemble import bitwise_equal_lanes
from repro.experiments.runner import results_header
from repro.parallel import available_cpus, resolve_workers, run_sharded
from repro.scenarios import scenario_samples

N_CORES = 512
N_CELLS = 24
H_MAX = 10e3
DRIVER_STEP = 400.0
REQUIRED_WORKERS = 4


def _workload():
    models = make_preisach_ensemble(N_CORES, n_cells=N_CELLS)
    batch = BatchPreisachModel.from_scalar_models(models)
    h = scenario_samples("minor-loop-ladder", H_MAX, DRIVER_STEP)
    return batch, h


def test_sharded_speedup_over_single_process(benchmark, results_dir, bench_json):
    """The acceptance headline: >= 2x over single-process at N = 512
    with >= 4 workers.  Smaller hosts still measure at whatever width
    they grant and land ``results/BENCH-EXP-B3.json`` — only the 2x
    *assertion* skips, so every host leaves an honest trajectory."""
    workers = resolve_workers(min(REQUIRED_WORKERS, available_cpus()))
    batch, h = _workload()

    result = benchmark.pedantic(
        lambda: run_sharded(batch, h, n_workers=workers),
        rounds=3,
        iterations=1,
    )
    sharded_seconds = benchmark.stats.stats.min

    start = time.perf_counter()
    single = run_batch_series(batch, h)
    single_seconds = time.perf_counter() - start

    speedup = single_seconds / sharded_seconds
    throughput = N_CORES * len(h) / sharded_seconds
    report = (
        f"sharded preisach: {sharded_seconds:.3f} s on {workers} workers, "
        f"single-process: {single_seconds:.3f} s -> {speedup:.1f}x "
        f"speedup, {throughput:.3e} core-steps/s at N = {N_CORES}"
    )
    print("\n" + report)
    (results_dir / "EXP-B3_bench.txt").write_text(
        results_header(backend=batch.backend.name, workers=workers)
        + report
        + "\n"
    )
    bench_json(
        "EXP-B3",
        [
            {"op": "sharded", "n": N_CORES, "seconds": sharded_seconds},
            {"op": "single", "n": N_CORES, "seconds": single_seconds},
        ],
        backend=batch.backend.name,
        workers=workers,
    )

    # Bitwise equivalence of what was just timed (not a tolerance).
    assert bitwise_equal_lanes(single, result) == N_CORES
    if workers < REQUIRED_WORKERS:
        pytest.skip(
            f"measured and recorded at {workers} worker(s), but the 2x "
            f"claim needs >= {REQUIRED_WORKERS} real workers "
            f"({available_cpus()} CPUs, REPRO_PARALLEL_MAX_WORKERS cap)"
        )
    assert speedup >= 2.0, report


def test_sharded_reassembly_is_bitwise_at_n512(results_dir):
    """Whatever the host width, the N = 512 reassembly is exact."""
    batch, h = _workload()
    single = run_batch_series(batch, h)
    sharded = run_sharded(batch, h, n_workers=resolve_workers(None))
    assert np.array_equal(single.h, sharded.h)
    assert bitwise_equal_lanes(single, sharded) == N_CORES
    assert sorted(single.counters) == sorted(sharded.counters)


def test_parallel_ensemble_experiment(benchmark, persist):
    """EXP-B3 end-to-end (covers every family's sharded equivalence)."""
    result = benchmark.pedantic(
        lambda: run_experiment("EXP-B3"),
        rounds=1,
        iterations=1,
    )
    persist(result)
    print()
    print(result.render())
    for row in result.data["equivalence"]:
        assert row["equal_lanes"] == row["n_cores"], row["family"]
    assert result.data["equal_lanes"] == result.data["n_cores"]
