"""EXP-X2 bench: flux-driven (inverse) model."""

import math

from repro.experiments import run_experiment


def test_flux_driven_inverse(benchmark, results_dir, persist):
    result = benchmark.pedantic(
        lambda: run_experiment("EXP-X2"),
        rounds=1,
        iterations=1,
    )
    persist(result)
    print()
    print(result.render())

    import numpy as np

    # Round trip within a few flux quanta (the re-drive takes the
    # recovered H in driver-sized jumps, adding one Euler-step error
    # on top of the inverse's own dbmax quantisation).
    assert result.data["round_trip_error"] < 6.0 * 0.005
    # Distorted magnetising field: crest factor clearly above a sine's
    # (measured 1.65 at 1.2 T peak — the knee, not deep saturation).
    assert result.data["crest_factor"] > math.sqrt(2.0) * 1.1
    # |H| at the B=0 crossings sits near the coercivity.
    mean_hc = float(np.mean(np.abs(result.data["h_at_crossings"])))
    assert 2500.0 < mean_hc < 4200.0
