"""Microbenchmarks of the computational kernels.

Not paper artefacts — these give pytest-benchmark statistically
meaningful hot-loop numbers for the pieces everything else is built
from, so performance regressions in the substrates are visible.
"""

import numpy as np

from repro.core.integrator import TimelessIntegrator
from repro.core.slope import guarded_slope
from repro.hdl.kernel import Scheduler, SimTime
from repro.ja.anhysteretic import make_anhysteretic
from repro.ja.equations import magnetisation_slope
from repro.ja.parameters import PAPER_PARAMETERS

_FIELD_CYCLE = np.concatenate(
    [
        np.linspace(0.0, 10e3, 200),
        np.linspace(10e3, -10e3, 400),
        np.linspace(-10e3, 10e3, 400),
    ]
)


def test_timeless_step_throughput(benchmark):
    """Cost of one full field cycle through the timeless integrator."""
    integrator = TimelessIntegrator(PAPER_PARAMETERS, dhmax=50.0)

    def run_cycle():
        integrator.reset()
        for h in _FIELD_CYCLE:
            integrator.step(float(h))
        return integrator.counters.euler_steps

    steps = benchmark(run_cycle)
    assert steps > 100


def test_guarded_slope_evaluation(benchmark):
    """Cost of the guarded Integral-process algebra (one evaluation)."""
    result = benchmark(
        lambda: guarded_slope(PAPER_PARAMETERS, 0.8, 0.5, 50.0)
    )
    assert result.dm > 0.0


def test_full_slope_evaluation(benchmark):
    """Cost of the self-consistent Eq. 1 slope (reference RHS)."""
    anhysteretic = make_anhysteretic(PAPER_PARAMETERS)
    value = benchmark(
        lambda: magnetisation_slope(
            PAPER_PARAMETERS, anhysteretic, 3000.0, 0.4, 1.0
        )
    )
    assert value > 0.0


def test_event_kernel_delta_throughput(benchmark):
    """Cost of 1000 timed events through the SystemC-like kernel."""

    def run_kernel():
        scheduler = Scheduler()
        sig = scheduler.signal("s", 0)
        tick = scheduler.event("tick")
        count = [0]

        def ticker():
            count[0] += 1
            sig.write(count[0])
            if count[0] < 1000:
                tick.notify_after(SimTime.ns(1))

        scheduler.process("ticker", ticker, sensitive_to=[tick], initialise=True)
        scheduler.run()
        return scheduler.delta_count

    deltas = benchmark(run_kernel)
    assert deltas >= 1000
