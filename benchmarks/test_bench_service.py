"""EXP-B7 bench: the warm-pool service layer's acceptance bar.

EXP-B7 measures what the service stack buys over one-shot execution:
cold vs warm submission latency (a persistent pre-warmed pool against
a fresh ``multiprocessing`` pool per call), cache miss vs hit cost,
and — the headline — the same scenario grid run twice through
``run_scenario_grid(..., service=...)``.  Pass 1 computes every unique
cell and inserts it; pass 2 is served entirely from the
content-addressed cache, and must land **>= 5x** faster.

Hosts granted < 4 real cores skip (not fail): with one or two workers
the cold path barely pays any spin-up and the timing bars are noise —
the tier-1 suite (``tests/test_service.py``) still pins all the
correctness there (bitwise cache parity, dedupe, coalescing).  The
table lands in ``results/EXP-B7.txt`` and the machine-readable
trajectory in ``results/BENCH-EXP-B7.json``.
"""

import pytest

from repro.experiments import run_experiment
from repro.experiments.runner import results_header
from repro.parallel import available_cpus, resolve_workers

REQUIRED_CPUS = 4


def test_service_warm_pool_acceptance(benchmark, results_dir, bench_json):
    """Narrow hosts still measure and land ``results/BENCH-EXP-B7.json``;
    only the timing bars skip below ``REQUIRED_CPUS``."""
    cpus = available_cpus()
    workers = resolve_workers(None)

    result = benchmark.pedantic(
        lambda: run_experiment("EXP-B7", n_cores=256, repeats=3),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    (results_dir / "EXP-B7.txt").write_text(
        results_header(
            backend=", ".join(result.data["backends"]),
            workers=result.data["workers"],
        )
        + result.render()
        + "\n"
    )
    bench_json(
        "EXP-B7",
        result.data["rows"],
        backend=", ".join(result.data["backends"]),
        workers=result.data["workers"],
    )

    # Correctness rides along: the warm-pool result is the cold result.
    assert result.data["warm_matches_cold"], result.data
    assert result.data["pass2_matches_pass1"], result.data

    if cpus < REQUIRED_CPUS or workers < REQUIRED_CPUS:
        pytest.skip(
            f"measured and recorded, but the timing bars need >= "
            f"{REQUIRED_CPUS} real cores for meaningful warm-pool timing; "
            f"host grants {workers} ({cpus} CPUs, "
            "REPRO_PARALLEL_MAX_WORKERS cap)"
        )

    # A cache hit must be far cheaper than its miss.
    assert result.data["hit_seconds"] < result.data["miss_seconds"], (
        result.data
    )

    # The bar: the repeated grid's second pass is served from the cache
    # at >= 5x the first pass's speed.
    assert result.data["grid_speedup"] >= 5.0, result.data
