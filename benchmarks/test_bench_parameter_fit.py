"""EXP-X3 bench: JA parameter extraction."""

from repro.experiments import run_experiment


def test_parameter_recovery(benchmark, results_dir, persist):
    result = benchmark.pedantic(
        lambda: run_experiment("EXP-X3"),
        rounds=1,
        iterations=1,
    )
    persist(result)
    print()
    print(result.render())

    fit = result.data["fit"]
    assert fit.relative_rms < 0.01
    for name, error_pct in result.data["recovery_errors"].items():
        assert error_pct < 10.0, f"{name} recovered {error_pct:.1f}% off"
