"""EXP-T4 bench: minor-loop robustness grid at paper resolution."""

from repro.experiments import run_experiment


def test_minor_loop_grid(benchmark, results_dir, persist):
    result = benchmark.pedantic(
        lambda: run_experiment("EXP-T4", dhmax=50.0, cycles=10),
        rounds=1,
        iterations=1,
    )
    persist(result)
    print()
    print(result.render())

    # Paper: "no numerical difficulties for various minor loops sizes
    # and in different positions".
    assert result.data["all_acceptable"]
    assert result.data["all_decayed"]
