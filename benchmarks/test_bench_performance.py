"""EXP-T3 bench: simulation effort, timeless vs solver-coupled.

This is the pytest-benchmark-native bench: each workload is timed with
proper rounds so the relative cost ("long simulation times") is
measured, not eyeballed.  The slowdown assertion uses work counters
(accepted analogue steps), which are deterministic across machines,
rather than wall time.
"""

from repro.experiments.performance import (
    ams_integ_workload,
    ams_timeless_workload,
    systemc_workload,
    timeless_workload,
)


def test_timeless_functional(benchmark):
    counters = benchmark(timeless_workload)
    assert counters["euler_steps"] > 0


def test_timeless_systemc_kernel(benchmark):
    counters = benchmark.pedantic(systemc_workload, rounds=3, iterations=1)
    assert counters["euler_steps"] > 0


def test_timeless_vhdlams(benchmark):
    counters = benchmark.pedantic(ams_timeless_workload, rounds=3, iterations=1)
    assert not counters["gave_up"]


def test_integ_vhdlams_loose_and_effort_ratio(benchmark):
    """Times the (completing, loose-tolerance) 'INTEG run and asserts
    the paper's 'long simulation times' claim: the solver-coupled
    formulation needs well over an order of magnitude more analogue
    steps than the timeless one for the same loop."""
    integ_counters = benchmark.pedantic(
        ams_integ_workload, rounds=1, iterations=1
    )
    assert not integ_counters["gave_up"]

    timeless_counters = ams_timeless_workload()
    ratio = (
        integ_counters["accepted_steps"]
        / timeless_counters["accepted_steps"]
    )
    print(f"\n'INTEG / timeless accepted-step ratio: {ratio:.0f}x")
    assert ratio > 20.0
