"""EXP-X4 bench: Everett-identified Preisach vs JA."""

from repro.experiments import run_experiment


def test_cross_model(benchmark, results_dir, persist):
    result = benchmark.pedantic(
        lambda: run_experiment("EXP-X4"),
        rounds=1,
        iterations=1,
    )
    persist(result)
    print()
    print(result.render())

    scenarios = result.data["scenarios"]
    forc = scenarios["FORC descent (fitted family)"]
    major = scenarios["major loop (return branches)"]
    minor = scenarios["biased minor loop (prediction)"]

    # Fitted family reproduces within a few percent...
    assert forc["distance"].max_abs / forc["swing"] < 0.04
    assert major["distance"].max_abs / major["swing"] < 0.05
    # ... while minor-loop prediction carries the congruency gap —
    # clearly larger, but bounded.
    minor_rel = minor["distance"].max_abs / minor["swing"]
    assert 0.05 < minor_rel < 0.40
    # Identification-time departure from Preisach behaviour is small.
    assert result.data["clipped"] < 0.05
