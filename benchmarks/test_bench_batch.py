"""EXP-B1 bench: batch-ensemble throughput vs the scalar per-model loop.

Measures cores x samples / s through the vectorised lockstep engine
against the per-model Python loop it replaces, and asserts the headline
claim of the batch subsystem: at N = 256 heterogeneous cores the batch
engine is at least an order of magnitude faster — while producing
bitwise-identical trajectories (asserted via the EXP-B1 experiment
below and, exhaustively, by ``tests/test_batch_equivalence.py``).
"""

import time

import numpy as np

from repro.batch import BatchTimelessModel, run_batch_series
from repro.experiments import run_experiment
from repro.experiments.batch_ensemble import (
    make_ensemble,
    make_waveforms,
    run_scalar_ensemble,
)
from repro.experiments.runner import results_header

N_CORES = 256
#: Coarser driver than the experiment default keeps the scalar
#: reference loop (256 serial models) inside a benchmark-friendly run
#: time; the speedup ratio is insensitive to the sample count.
DRIVER_STEP = 50.0


def _ensemble():
    params, dhmax, accept_equal = make_ensemble(N_CORES)
    h = make_waveforms(N_CORES, driver_step=DRIVER_STEP)
    return params, dhmax, accept_equal, h


def batch_ensemble_workload() -> dict[str, float]:
    params, dhmax, accept_equal, h = _ensemble()
    batch = BatchTimelessModel(params, dhmax=dhmax, accept_equal=accept_equal)
    result = run_batch_series(batch, h)
    return {
        "cores": N_CORES,
        "samples": len(result),
        "euler_steps": int(result.euler_steps.sum()),
    }


def test_batch_engine_throughput(benchmark):
    counters = benchmark.pedantic(batch_ensemble_workload, rounds=3, iterations=1)
    assert counters["euler_steps"] > 0


def test_batch_speedup_over_scalar_loop(benchmark, results_dir):
    """The acceptance headline: >= 10x over the scalar loop at N = 256."""
    params, dhmax, accept_equal, h = _ensemble()

    def batch_run():
        batch = BatchTimelessModel(
            params, dhmax=dhmax, accept_equal=accept_equal
        )
        return run_batch_series(batch, h)

    result = benchmark.pedantic(batch_run, rounds=3, iterations=1)
    batch_seconds = benchmark.stats.stats.min

    start = time.perf_counter()
    m_scalar, b_scalar = run_scalar_ensemble(params, dhmax, accept_equal, h)
    scalar_seconds = time.perf_counter() - start

    speedup = scalar_seconds / batch_seconds
    throughput = N_CORES * h.shape[0] / batch_seconds
    report = (
        f"batch: {batch_seconds:.3f} s, scalar loop: {scalar_seconds:.3f} s "
        f"-> {speedup:.1f}x speedup, {throughput:.3e} core-steps/s "
        f"at N = {N_CORES}"
    )
    print("\n" + report)
    (results_dir / "EXP-B1_bench.txt").write_text(
        results_header(backend="numpy", workers=1) + report + "\n"
    )

    # Bitwise equivalence of what was just timed (not a tolerance).
    assert np.array_equal(result.b, b_scalar)
    assert np.array_equal(result.m, m_scalar)
    assert speedup >= 10.0, report


def test_batch_ensemble_experiment(benchmark, persist):
    """EXP-B1 end-to-end (smaller N: the experiment times its own
    scalar reference internally)."""
    result = benchmark.pedantic(
        lambda: run_experiment("EXP-B1", n_cores=64),
        rounds=1,
        iterations=1,
    )
    persist(result)
    print()
    print(result.render())
    assert result.data["equal_lanes"] == result.data["n_cores"]
    assert result.data["max_delta_b"] == 0.0
