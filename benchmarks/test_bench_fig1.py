"""EXP-F1 bench: regenerate Figure 1 at paper resolution.

Times the full SystemC-kernel sweep (decaying triangle, dhmax = 50 A/m)
and checks the figure's characteristics stay inside the plot-read
ranges recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import run_experiment


def test_fig1_regeneration(benchmark, results_dir, persist):
    result = benchmark.pedantic(
        lambda: run_experiment("EXP-F1", dhmax=50.0, minor_loop_count=4),
        rounds=1,
        iterations=1,
    )
    persist(result)
    print()
    print(result.render())
    print(result.artifacts["fig1_ascii"])

    metrics = result.data["metrics"]
    audit = result.data["audit"]
    # Paper Figure 1: H to +/-10 kA/m, B within the +/-2 T axis, several
    # nested minor loops, no numerical failures.
    assert result.data["h"].max() == pytest.approx(10e3)
    assert abs(result.data["b"]).max() < 2.0
    assert 2500.0 < metrics.coercivity < 4500.0
    assert 1.0 < metrics.remanence < 1.5
    assert audit.finite and audit.acceptable()
