"""EXP-B8 bench: multi-host dispatch overhead and streamed lane blocks.

The scale-out twin of ``test_bench_service.py``: EXP-B8 runs one
workload through the in-process engine, the local sharded pool, and a
localhost fleet of two :mod:`repro.dist` worker agents, then sweeps
``chunk_lanes`` to record the memory/latency trade of streamed lane
blocks, and measures the echo round-trip the planner prices links
with.  No speedup bar is asserted — two localhost sockets on one
machine measure *protocol overhead*, not fleet throughput — but every
dispatched configuration must be bitwise identical to the
single-process run, the streamed sweep's peak resident bytes must
shrink with the chunk size, and the whole trajectory lands in
``results/BENCH-EXP-B8.json`` on any host, however narrow.
"""

from repro.experiments import run_experiment
from repro.experiments.runner import results_header


def test_dispatch_overhead_and_streaming(benchmark, results_dir, bench_json):
    result = benchmark.pedantic(
        lambda: run_experiment("EXP-B8", n_cores=64, repeats=3),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    (results_dir / "EXP-B8.txt").write_text(
        results_header(
            backend=result.data["backend"],
            workers=result.data["n_agents"],
        )
        + result.render()
        + "\n"
    )
    bench_json(
        "EXP-B8",
        result.data["rows"],
        backend=result.data["backend"],
        workers=result.data["n_agents"],
    )

    # Correctness rides along on every measured configuration.
    assert result.data["pooled_bitwise"], result.data
    assert result.data["dispatched_bitwise"], result.data
    assert result.data["chunks_bitwise"], result.data

    # The streamed sweep's memory claim: smaller chunks, smaller peak.
    assert result.data["peak_monotone"], result.data["chunk_rows"]

    # The link probe must produce a sane planning input on localhost.
    assert 0.0 < result.data["link_overhead_s"] < 1.0, result.data
